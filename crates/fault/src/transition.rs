//! Launch-on-capture transition-fault simulation across the paper's
//! double-capture window.
//!
//! The capture window (Fig. 2) issues, for each clock domain in `d3`-spaced
//! sequence, a pair of pulses `d2`/`d4` apart — the functional period. The
//! first pulse *launches* transitions (flip-flop outputs change from the
//! scanned-in state to captured functional data); the second pulse
//! *captures* the response one functional period later. A transition fault
//! is detected when the launched transition at its site fails to settle in
//! time and the resulting wrong value is captured into some flip-flop that
//! the unload then observes.
//!
//! The simulator models the whole window frame by frame:
//!
//! ```text
//! F0 (scan state) --C1(dom0)--> F1 --C2(dom0)--> F2 --C1(dom1)--> F3 ...
//! ```
//!
//! Odd frames (between a domain's two pulses) last one functional period —
//! only there can a slow transition be "caught". Even frames are the long
//! `d3`/`d5` intervals, where every transition has time to settle; fault
//! effects cross them only as wrong *values* already captured into
//! flip-flops, which the simulator carries in a per-fault state overlay.
//!
//! Like [`crate::StuckAtSim`], grading is sharded across the persistent `lbist-exec` work-stealing pool:
//! the fault-free window frames are computed once and shared read-only;
//! each worker replays faults from its shard with a thread-local
//! [`Propagator`] and flip-flop overlay, so parallel and serial coverage
//! are bit-identical.

use crate::kernel::{kernel_replay_shard, KernelScratch, TransitionKernelPlan};
use crate::phases::SimPhaseMetrics;
use crate::propagate::Propagator;
use crate::stuck::CANCEL_POLL_STRIDE;
use crate::{CoverageReport, Fault};
use lbist_exec::{CancelToken, LaneWord, RetryPolicy};
use lbist_netlist::{DomainId, NodeId};
use lbist_sim::{CompiledCircuit, KernelProgram};
use std::collections::HashMap;
use std::sync::Arc;

/// The default 64-lane launch-on-capture simulator —
/// [`WideTransitionSim`] at the `u64` frame width every existing call
/// site uses.
pub type TransitionSim<'a> = WideTransitionSim<'a, u64>;

/// Minimum faults per worker shard before another worker is engaged.
/// Window replay is heavier per fault than single-frame PPSFP, so the
/// threshold is lower than `StuckAtSim`'s.
const MIN_SHARD_FAULTS: usize = 16;

/// The capture-window schedule: which domains pulse, in which order.
///
/// Each listed domain receives two pulses; the `d3` gap orders domains so
/// inter-domain skew cannot corrupt capture (the paper sets `d3` larger
/// than the worst-case skew — the timing side of that argument lives in
/// `lbist-clock`).
///
/// # Example
///
/// ```
/// use lbist_fault::CaptureWindow;
/// use lbist_netlist::DomainId;
/// let w = CaptureWindow::all_domains(3);
/// assert_eq!(w.order().len(), 3);
/// assert_eq!(w.num_frames(), 7); // F0 + 2 per domain
/// let custom = CaptureWindow::new(vec![DomainId::new(1), DomainId::new(0)]);
/// assert_eq!(custom.order()[0], DomainId::new(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureWindow {
    order: Vec<DomainId>,
}

impl CaptureWindow {
    /// A window pulsing the given domains in the given order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty or repeats a domain.
    pub fn new(order: Vec<DomainId>) -> Self {
        assert!(!order.is_empty(), "a capture window pulses at least one domain");
        let mut seen = std::collections::HashSet::new();
        for d in &order {
            assert!(seen.insert(*d), "domain {d} pulsed twice in one window");
        }
        CaptureWindow { order }
    }

    /// Domains `0..n` in index order.
    pub fn all_domains(n: usize) -> Self {
        CaptureWindow::new((0..n).map(|i| DomainId::new(i as u16)).collect())
    }

    /// The pulse order.
    pub fn order(&self) -> &[DomainId] {
        &self.order
    }

    /// Number of evaluation frames the window spans (`1 + 2·domains`).
    pub fn num_frames(&self) -> usize {
        1 + 2 * self.order.len()
    }

    /// The domain captured between frame `f` and `f + 1`, if any.
    pub(crate) fn capturing_domain(&self, frame: usize) -> Option<DomainId> {
        // Captures happen after F0..F(2n-1): domain k pulses at boundaries
        // 2k (its launch C1) and 2k+1 (its capture C2).
        if frame >= 2 * self.order.len() {
            None
        } else {
            Some(self.order[frame / 2])
        }
    }

    /// `true` when the frame (by index) is an at-speed frame — between a
    /// domain's launch and capture pulses.
    pub fn is_at_speed_frame(&self, frame: usize) -> bool {
        frame > 0 && frame % 2 == 1 && frame < self.num_frames()
    }
}

/// Thread-local replay scratch for one worker: event-driven propagation
/// state plus the per-fault flip-flop overlay, reused across faults and
/// batches.
#[derive(Debug)]
struct ReplayScratch<W: LaneWord> {
    prop: Propagator<W>,
    /// Flip-flops currently holding a faulty word for the fault being
    /// replayed.
    overlay: HashMap<NodeId, W>,
    /// Per-frame seed of overlay flip-flops that differ from the
    /// fault-free frame (rebuilt each frame without allocating).
    dirty: Vec<(NodeId, W)>,
    /// Per-at-speed-frame activation words of the fault being replayed
    /// (indexed by frame, reused across faults without allocating).
    activation: Vec<W>,
}

impl<W: LaneWord> ReplayScratch<W> {
    fn new(cc: &CompiledCircuit) -> Self {
        ReplayScratch {
            prop: Propagator::new(cc),
            overlay: HashMap::new(),
            dirty: Vec::new(),
            activation: Vec::new(),
        }
    }
}

/// Launch-on-capture transition-fault simulator, generic over the lane
/// width (64/128/256 scan patterns per pass for `u64`/`u128`/`[u64; 4]`
/// frames).
///
/// Grades `W::LANES` scan patterns per [`WideTransitionSim::run_batch`]:
/// the caller loads the scan state (flip-flop words) and primary-input
/// words of the base frame; the simulator replays the whole double-capture
/// window for the fault-free circuit and then for every active fault, and
/// compares final flip-flop states — exactly what the unload-into-MISR
/// observes.
///
/// Active faults are sharded across the persistent `lbist-exec`
/// work-stealing pool (each with its own propagation and overlay scratch)
/// and the active list is compacted by swap-remove as faults drop.
/// [`WideTransitionSim::serial`] pins grading to the calling thread;
/// parallel and serial results are bit-identical, as are wide and 64-lane
/// runs over the same pattern stream (property-tested in the bench crate).
#[derive(Debug)]
pub struct WideTransitionSim<'a, W: LaneWord = u64> {
    cc: &'a CompiledCircuit,
    window: CaptureWindow,
    faults: Vec<Fault>,
    /// Indices into `faults` still being graded, level-ordered for shard
    /// locality; swap-removed as faults drop.
    active: Vec<u32>,
    detections: Vec<u32>,
    drop_after: u32,
    patterns_run: u64,
    threads: usize,
    /// `true` until [`WideTransitionSim::set_threads`] is called: auto
    /// mode also respects [`MIN_SHARD_FAULTS`]; explicit budgets are
    /// honoured exactly.
    threads_auto: bool,
    /// One replay scratch per worker, reused across batches.
    scratch: Vec<ReplayScratch<W>>,
    /// Compiled kernel program (see [`WideTransitionSim::set_kernel`]).
    kernel: Option<Arc<KernelProgram>>,
    /// Replay plan for the kernel path, built lazily at the first batch.
    kplan: Option<TransitionKernelPlan>,
    /// One kernel replay scratch per worker.
    kscratch: Vec<KernelScratch<W>>,
    /// Per-active-fault detection words (aligned with `active`).
    batch_det: Vec<W>,
    /// Fault-free value frames, one per window frame (reused per batch).
    good_frames: Vec<Vec<W>>,
    /// Cooperative cancellation; a cancelled batch is discarded unmerged
    /// so the state stays at the last completed batch.
    cancel: Option<CancelToken>,
    /// Per-batch phase timers (no-op unless a session installs real
    /// handles via [`WideTransitionSim::set_phase_metrics`]).
    phases: SimPhaseMetrics,
}

impl<'a, W: LaneWord> WideTransitionSim<'a, W> {
    /// Creates a simulator for `faults` (transition kinds only) under the
    /// given capture window. Grading uses every available hardware
    /// thread; see [`WideTransitionSim::serial`] and
    /// [`WideTransitionSim::set_threads`].
    ///
    /// # Panics
    ///
    /// Panics if any fault is not a transition kind, or any fault is a
    /// branch fault (transition grading here is stem-based, the standard
    /// model granularity).
    pub fn new(cc: &'a CompiledCircuit, faults: Vec<Fault>, window: CaptureWindow) -> Self {
        assert!(
            faults.iter().all(|f| f.kind.is_transition() && f.is_stem()),
            "TransitionSim grades stem transition faults"
        );
        let n = faults.len();
        let mut active: Vec<u32> = (0..n as u32).collect();
        active.sort_unstable_by_key(|&i| {
            let f = &faults[i as usize];
            (cc.level(f.node), f.node.index())
        });
        WideTransitionSim {
            good_frames: vec![cc.new_wide_frame(); window.num_frames()],
            cc,
            window,
            faults,
            active,
            detections: vec![0; n],
            drop_after: 1,
            patterns_run: 0,
            threads: lbist_exec::current_num_threads(),
            threads_auto: true,
            scratch: Vec::new(),
            kernel: None,
            kplan: None,
            kscratch: Vec::new(),
            batch_det: Vec::new(),
            cancel: None,
            phases: SimPhaseMetrics::default(),
        }
    }

    /// Installs (or clears) a compiled kernel program: subsequent batches
    /// evaluate the fault-free window frames with
    /// [`KernelProgram::execute`] and replay faults over precomputed
    /// the lowered instructions, event-driven (the sparse form of
    /// patched-instruction execution).
    /// Results are bit-identical to the interpreter path.
    ///
    /// The program must have been lowered from this simulator's circuit
    /// with a keep set covering this fault list (use
    /// [`crate::grading_keep_set`]); violations panic at the next batch.
    ///
    /// # Panics
    ///
    /// Panics if the program's node count differs from the circuit's.
    pub fn set_kernel(&mut self, kernel: Option<Arc<KernelProgram>>) {
        if let Some(k) = &kernel {
            assert_eq!(
                k.num_nodes(),
                self.cc.num_nodes(),
                "kernel program was lowered from a different circuit"
            );
        }
        self.kernel = kernel;
        self.kplan = None;
        self.kscratch.clear();
    }

    /// `true` when a compiled kernel program drives this simulator.
    pub fn uses_kernel(&self) -> bool {
        self.kernel.is_some()
    }

    /// Pins grading to the calling thread (the determinism escape hatch;
    /// results are bit-identical to parallel grading).
    pub fn serial(mut self) -> Self {
        self.set_threads(1);
        self
    }

    /// Sets the worker-thread budget for subsequent batches (`1` =
    /// serial).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn set_threads(&mut self, n: usize) {
        assert!(n > 0, "at least one grading thread is required");
        self.threads = n;
        self.threads_auto = false;
    }

    /// The current worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the n-detect drop budget (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn set_drop_after(&mut self, n: u32) {
        assert!(n > 0);
        self.drop_after = n;
    }

    /// Number of faults still actively graded.
    pub fn active_faults(&self) -> usize {
        self.active.len()
    }

    /// Installs (or clears) a cancellation token polled by subsequent
    /// batches; see [`WideTransitionSim::try_run_batch`].
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// Installs phase timers: each batch records its fault-free window
    /// evaluation into `phases.sim_ns` and its sharded replay + merge
    /// into `phases.detect_ns`. Observational only — grading results
    /// are bit-identical with or without it.
    pub fn set_phase_metrics(&mut self, phases: SimPhaseMetrics) {
        self.phases = phases;
    }

    /// Grades one batch of up to `W::LANES` scan patterns. `base` must
    /// carry the scan state in its flip-flop words and the held PI values;
    /// it is consumed as frame F0.
    ///
    /// Returns the number of newly dropped faults.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is outside `1..=W::LANES`, or if a token
    /// installed via [`WideTransitionSim::set_cancel`] has fired (use
    /// [`WideTransitionSim::try_run_batch`] on cancellable paths).
    pub fn run_batch(&mut self, base: &[W], num_patterns: usize) -> usize {
        self.try_run_batch(base, num_patterns)
            .expect("batch cancelled: cancellable callers must use try_run_batch")
    }

    /// Cancellable [`WideTransitionSim::run_batch`]: returns `None` —
    /// with the batch **discarded, not merged** — once the installed
    /// token fires, leaving counts, the active list, and `patterns_run`
    /// at the last completed batch (a clean checkpointable state).
    ///
    /// Shards replay under panic containment (bounded retries, then
    /// serial degrade) and poll the token between faults.
    pub fn try_run_batch(&mut self, base: &[W], num_patterns: usize) -> Option<usize> {
        let cancel = self.cancel.clone();
        let cancel = cancel.as_ref();
        if cancel.is_some_and(|c| c.is_cancelled()) {
            return None;
        }
        if let Some(prog) = &self.kernel {
            if self.kplan.is_none() {
                // One-time replay-plan construction is detection
                // machinery — charged to the detect span so the phase
                // trace still accounts for the batch wall time.
                let _plan_span = self.phases.detect_ns.start();
                self.kplan = Some(TransitionKernelPlan::build(prog, self.cc, &self.faults));
            }
        }
        let lane_mask = W::mask_lanes(num_patterns);
        {
            let _sim_span = self.phases.sim_ns.start();
            self.compute_good_frames(base);
        }

        let n_active = self.active.len();
        self.batch_det.clear();
        self.batch_det.resize(n_active, W::zero());
        if n_active == 0 {
            self.patterns_run += num_patterns as u64;
            return Some(0);
        }

        // As in `WideStuckAtSim`: in auto mode engage another worker only
        // once it owns a meaningful shard, so compacted late batches skip
        // thread spawns; explicit budgets are honoured exactly.
        let min_shard = if self.threads_auto { Some(MIN_SHARD_FAULTS) } else { None };
        let workers = lbist_exec::worker_budget(self.threads, n_active, min_shard);

        // One detect span covers dispatch, retries, and the serial
        // merge below (records on every exit path, cancelled included).
        let _detect_span = self.phases.detect_ns.start();
        let cc = self.cc;
        let window = &self.window;
        let faults: &[Fault] = &self.faults;
        let good_frames: &[Vec<W>] = &self.good_frames;
        if let (Some(prog), Some(plan)) = (&self.kernel, &self.kplan) {
            let prog: &KernelProgram = prog;
            lbist_exec::resilient_chunks_with_scratch(
                &self.active,
                &mut self.batch_det,
                workers,
                &mut self.kscratch,
                || KernelScratch::new(prog, cc),
                |idx_shard, det_shard, scratch| {
                    kernel_replay_shard(
                        prog,
                        plan,
                        cc,
                        window,
                        faults,
                        good_frames,
                        idx_shard,
                        lane_mask,
                        scratch,
                        det_shard,
                        cancel,
                    );
                },
                &RetryPolicy::default(),
                cancel,
            );
        } else {
            lbist_exec::resilient_chunks_with_scratch(
                &self.active,
                &mut self.batch_det,
                workers,
                &mut self.scratch,
                || ReplayScratch::new(cc),
                |idx_shard, det_shard, scratch| {
                    replay_shard(
                        cc,
                        window,
                        faults,
                        good_frames,
                        idx_shard,
                        lane_mask,
                        scratch,
                        det_shard,
                        cancel,
                    );
                },
                &RetryPolicy::default(),
                cancel,
            );
        }
        if cancel.is_some_and(|c| c.is_cancelled()) {
            return None;
        }
        self.patterns_run += num_patterns as u64;

        // Serial merge with swap-remove compaction (lockstep on the two
        // aligned vectors).
        let mut newly_dropped = 0usize;
        let mut pos = 0usize;
        while pos < self.active.len() {
            let detected = self.batch_det[pos];
            if detected.is_zero() {
                pos += 1;
                continue;
            }
            let fault_idx = self.active[pos] as usize;
            self.detections[fault_idx] =
                self.detections[fault_idx].saturating_add(detected.count_ones());
            if self.detections[fault_idx] >= self.drop_after {
                self.active.swap_remove(pos);
                self.batch_det.swap_remove(pos);
                newly_dropped += 1;
            } else {
                pos += 1;
            }
        }
        Some(newly_dropped)
    }

    /// Restores the simulator to a checkpointed position: per-fault
    /// detection counts plus the pattern counter; the active list is
    /// rebuilt as every fault below the drop budget in the constructor's
    /// level-major order (the batch merge is order-independent, so
    /// resumed results are bit-identical — see
    /// [`crate::WideStuckAtSim::restore`]).
    ///
    /// Call after [`WideTransitionSim::set_drop_after`].
    ///
    /// # Panics
    ///
    /// Panics if `detections` does not match the fault-list length.
    pub fn restore(&mut self, detections: &[u32], patterns_run: u64) {
        assert_eq!(
            detections.len(),
            self.faults.len(),
            "restored detections must match the fault list"
        );
        self.detections = detections.to_vec();
        self.patterns_run = patterns_run;
        self.active = (0..self.faults.len() as u32)
            .filter(|&i| self.detections[i as usize] < self.drop_after)
            .collect();
        self.active.sort_unstable_by_key(|&i| {
            let f = &self.faults[i as usize];
            (self.cc.level(f.node), f.node.index())
        });
        self.batch_det.clear();
    }

    /// Patterns graded so far (the counter captured by checkpoints).
    pub fn patterns_run(&self) -> u64 {
        self.patterns_run
    }

    fn compute_good_frames(&mut self, base: &[W]) {
        let nframes = self.window.num_frames();
        match &self.kernel {
            Some(prog) => prog.execute_into(base, &mut self.good_frames[0]),
            None => self.cc.eval2_into(base, &mut self.good_frames[0]),
        }
        for frame in 1..nframes {
            let (prev_slice, rest) = self.good_frames.split_at_mut(frame);
            let prev = &prev_slice[frame - 1];
            let cur = &mut rest[0];
            cur.copy_from_slice(prev);
            let dom = self
                .window
                .capturing_domain(frame - 1)
                .expect("every non-final frame boundary captures");
            for (i, &ff) in self.cc.dffs().iter().enumerate() {
                if self.cc.dff_domain(i) == dom {
                    let d_src = self.cc.fanins(ff)[0];
                    cur[ff.index()] = prev[d_src.index()];
                }
            }
            match &self.kernel {
                Some(prog) => prog.execute(cur),
                None => self.cc.eval2(cur),
            }
        }
    }

    /// The fault-free value frame at the end of the capture window of
    /// the **last graded batch** — the flip-flop states the unload then
    /// shifts into the MISRs. This is what a signature-accumulating
    /// caller compacts as the batch's fault-free response.
    ///
    /// Zeroed until the first [`WideTransitionSim::run_batch`].
    pub fn last_good_frame(&self) -> &[W] {
        self.good_frames.last().expect("a capture window spans at least one frame")
    }

    /// The faults being graded.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Per-fault detection counts.
    pub fn detections(&self) -> &[u32] {
        &self.detections
    }

    /// Faults not yet detected.
    pub fn undetected(&self) -> Vec<Fault> {
        self.faults
            .iter()
            .zip(&self.detections)
            .filter(|&(_, &d)| d == 0)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Current coverage.
    pub fn coverage(&self) -> CoverageReport {
        CoverageReport::from_detections(&self.faults, &self.detections, self.patterns_run)
    }

    /// The window schedule in use.
    pub fn window(&self) -> &CaptureWindow {
        &self.window
    }
}

/// Replays one shard of active faults across the capture window, writing
/// each fault's multi-lane detection word into `out`. Reads only the
/// shared fault-free frames; all mutable state is the worker's own
/// scratch, so shard scheduling cannot affect results. Polls `cancel`
/// every [`CANCEL_POLL_STRIDE`] faults and returns early when it fires
/// (the caller discards the whole batch).
#[allow(clippy::too_many_arguments)]
fn replay_shard<W: LaneWord>(
    cc: &CompiledCircuit,
    window: &CaptureWindow,
    faults: &[Fault],
    good_frames: &[Vec<W>],
    shard: &[u32],
    lane_mask: W,
    scratch: &mut ReplayScratch<W>,
    out: &mut [W],
    cancel: Option<&CancelToken>,
) {
    debug_assert_eq!(shard.len(), out.len());
    let nframes = window.num_frames();
    for (i, (&fault_idx, slot)) in shard.iter().zip(out.iter_mut()).enumerate() {
        if i % CANCEL_POLL_STRIDE == 0 && cancel.is_some_and(|c| c.is_cancelled()) {
            return;
        }
        let fault = faults[fault_idx as usize];
        let site = fault.node;
        // Per-fault overlay of flip-flop states (faulty words).
        scratch.overlay.clear();

        // Precompute the activation word of every at-speed frame: where
        // the launch pulse actually creates the fault's slow transition
        // at the site. Frames belonging to clock domains whose launch
        // never touches the site are inert for this fault, so the replay
        // can skip straight to the first active frame, and stop after the
        // last one once no faulty flip-flop state is left to carry — the
        // common case where only one domain is dirty then replays a
        // couple of frames instead of the whole window.
        scratch.activation.clear();
        scratch.activation.resize(nframes, W::zero());
        let mut first_active = usize::MAX;
        let mut last_active = 0usize;
        for frame in 0..nframes {
            if !window.is_at_speed_frame(frame) {
                continue;
            }
            let prev = good_frames[frame - 1][site.index()];
            let cur = good_frames[frame][site.index()];
            let act = (match fault.kind {
                crate::FaultKind::SlowToRise => prev.not().and(cur),
                crate::FaultKind::SlowToFall => prev.and(cur.not()),
                _ => unreachable!(),
            })
            .and(lane_mask);
            if !act.is_zero() {
                scratch.activation[frame] = act;
                first_active = first_active.min(frame);
                last_active = frame;
            }
        }
        if first_active == usize::MAX {
            // No launch excites the fault anywhere in the window.
            *slot = W::zero();
            continue;
        }

        for frame in first_active..nframes {
            let act = scratch.activation[frame];
            if act.is_zero() && frame > last_active && scratch.overlay.is_empty() {
                // Every remaining frame is activation-free and no faulty
                // state survives: the rest of the window is fault-free.
                break;
            }

            scratch.dirty.clear();
            for (&ff, &word) in &scratch.overlay {
                let good = good_frames[frame][ff.index()];
                if word != good {
                    scratch.dirty.push((ff, word));
                }
            }
            if act.is_zero() && scratch.dirty.is_empty() {
                continue; // nothing differs in this frame
            }

            scratch.prop.begin();
            for &(ff, word) in &scratch.dirty {
                scratch.prop.set(ff, word);
                scratch.prop.enqueue_fanouts(cc, ff);
            }
            if !act.is_zero() {
                // The site's faulty value: good with the launched
                // transition undone on activated lanes. (If the site is
                // also downstream of a dirty FF the propagation below may
                // reach it; injecting before running keeps level order
                // intact because the site's level precedes its fanouts,
                // and the pin below keeps the injected value
                // authoritative.)
                let cur = scratch.prop.value(site, &good_frames[frame]);
                scratch.prop.set(site, cur.xor(act));
                scratch.prop.enqueue_fanouts(cc, site);
            }
            let good = &good_frames[frame];
            let pin = if act.is_zero() { None } else { Some(site) };
            scratch.prop.run(cc, good, pin, |_, _| {});

            // Frame boundary: capture.
            if let Some(dom) = window.capturing_domain(frame) {
                for (i, &ff) in cc.dffs().iter().enumerate() {
                    if cc.dff_domain(i) != dom {
                        continue;
                    }
                    let d_src = cc.fanins(ff)[0];
                    let faulty_d = scratch.prop.value(d_src, good);
                    let good_next = good_frames[frame + 1][ff.index()];
                    if faulty_d != good_next {
                        scratch.overlay.insert(ff, faulty_d);
                    } else {
                        scratch.overlay.remove(&ff);
                    }
                }
            }
        }

        // Detection: any flip-flop whose final state differs is shifted
        // out through the MISR.
        let final_frame = &good_frames[nframes - 1];
        let mut detected = W::zero();
        for (&ff, &word) in &scratch.overlay {
            detected = detected.or(word.xor(final_frame[ff.index()]).and(lane_mask));
        }
        *slot = detected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use lbist_netlist::{DomainId, GateKind, Netlist};

    /// ff_a -> NOT -> ff_b, both domain 0. Scan in ff_a=0: C1 captures
    /// ff_b=NOT(0)=1 while ff_a reloads its own D... build with explicit
    /// feedback so values are controlled.
    fn inv_pipe() -> (Netlist, NodeId, NodeId, NodeId, NodeId) {
        let mut nl = Netlist::new("pipe");
        let pi = nl.add_input("pi");
        let ff_a = nl.add_dff(pi, DomainId::new(0));
        let inv = nl.add_gate(GateKind::Not, &[ff_a]);
        let ff_b = nl.add_dff(inv, DomainId::new(0));
        nl.add_output("q", ff_b);
        (nl, pi, ff_a, inv, ff_b)
    }

    #[test]
    fn single_capture_cannot_detect_transitions() {
        // With only ONE pulse (model: window where the domain appears but we
        // check after frame 1 semantics), a slow transition launched by the
        // pulse is never sampled again. Our window always double-pulses, so
        // emulate single capture by checking that detection requires the
        // at-speed frame: a fault whose site never transitions in the
        // window is undetected.
        let (nl, pi, ff_a, inv, _ff_b) = inv_pipe();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let w = CaptureWindow::all_domains(1);
        let faults = vec![Fault::stem(inv, FaultKind::SlowToRise)];
        let mut sim = TransitionSim::new(&cc, faults, w);
        let mut base = cc.new_frame();
        // pi=0 and ff_a=0: inv=1 stays 1 all window -> no rising transition
        // at inv; STR cannot be excited.
        base[pi.index()] = 0;
        base[ff_a.index()] = 0;
        sim.run_batch(&base, 4);
        assert_eq!(sim.detections()[0], 0);
    }

    #[test]
    fn launch_on_capture_detects_slow_to_rise() {
        let (nl, pi, ff_a, inv, _ff_b) = inv_pipe();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let w = CaptureWindow::all_domains(1);
        let faults = vec![Fault::stem(inv, FaultKind::SlowToRise)];
        let mut sim = TransitionSim::new(&cc, faults, w);
        let mut base = cc.new_frame();
        // Scan state: ff_a=1 (inv=0). PI=0, so C1 captures ff_a=0, making
        // inv rise 0->1 in the at-speed frame; C2 should capture ff_b=1 but
        // the slow-to-rise keeps inv at 0 -> ff_b captures 0. Detected.
        base[pi.index()] = 0;
        base[ff_a.index()] = !0;
        sim.run_batch(&base, 8);
        assert_eq!(sim.detections()[0], 8, "STR detected in every lane");
    }

    #[test]
    fn slow_to_fall_needs_falling_launch() {
        let (nl, pi, ff_a, inv, _ff_b) = inv_pipe();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let w = CaptureWindow::all_domains(1);
        let faults =
            vec![Fault::stem(inv, FaultKind::SlowToFall), Fault::stem(inv, FaultKind::SlowToRise)];
        let mut sim = TransitionSim::new(&cc, faults, w);
        let mut base = cc.new_frame();
        // ff_a=0 (inv=1), PI=1: C1 captures ff_a=1, inv falls 1->0.
        base[pi.index()] = !0;
        base[ff_a.index()] = 0;
        sim.run_batch(&base, 8);
        assert_eq!(sim.detections()[0], 8, "STF detected");
        assert_eq!(sim.detections()[1], 0, "STR not excited by a falling launch");
    }

    #[test]
    fn cross_domain_effect_carries_through_later_capture() {
        // dom0: ff_a -> inv -> ff_b(dom0); ff_b -> buf -> ff_c(dom1).
        // A fault detected into ff_b at dom0's C2 then propagates into
        // ff_c when dom1 captures later in the same window.
        let mut nl = Netlist::new("xdom");
        let pi = nl.add_input("pi");
        let ff_a = nl.add_dff(pi, DomainId::new(0));
        let inv = nl.add_gate(GateKind::Not, &[ff_a]);
        let ff_b = nl.add_dff(inv, DomainId::new(0));
        let buf = nl.add_gate(GateKind::Buf, &[ff_b]);
        let ff_c = nl.add_dff(buf, DomainId::new(1));
        nl.add_output("q", ff_c);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let w = CaptureWindow::all_domains(2);
        let faults = vec![Fault::stem(inv, FaultKind::SlowToRise)];
        let mut sim = TransitionSim::new(&cc, faults, w);
        let mut base = cc.new_frame();
        base[pi.index()] = 0;
        base[ff_a.index()] = !0; // launch a rise at inv
        sim.run_batch(&base, 1);
        assert_eq!(sim.detections()[0], 1);
    }

    /// A fault activated only by the *last* domain's launch is still
    /// graded correctly when the replay fast-forwards over the earlier
    /// domains' inert frames.
    #[test]
    fn late_domain_activation_survives_frame_skipping() {
        let mut nl = Netlist::new("late");
        let pi = nl.add_input("pi");
        // Domain 0 has unrelated state so its frames exist in the window.
        let idle = nl.add_dff(pi, DomainId::new(0));
        nl.add_output("q0", idle);
        // The fault cone lives entirely in domain 1.
        let ff_a = nl.add_dff(pi, DomainId::new(1));
        let inv = nl.add_gate(GateKind::Not, &[ff_a]);
        let ff_b = nl.add_dff(inv, DomainId::new(1));
        nl.add_output("q1", ff_b);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let w = CaptureWindow::all_domains(2);
        let faults =
            vec![Fault::stem(inv, FaultKind::SlowToRise), Fault::stem(inv, FaultKind::SlowToFall)];
        let mut sim = TransitionSim::new(&cc, faults, w);
        let mut base = cc.new_frame();
        // ff_a=1 (inv=0), pi=0: domain 1's launch captures ff_a=0, so inv
        // rises 0->1 only in domain 1's at-speed frame (the window's last).
        base[pi.index()] = 0;
        base[ff_a.index()] = !0;
        sim.run_batch(&base, 8);
        assert_eq!(sim.detections()[0], 8, "STR detected despite inert domain-0 frames");
        assert_eq!(sim.detections()[1], 0, "STF never excited anywhere in the window");
    }

    #[test]
    fn domain_order_respects_schedule() {
        let w = CaptureWindow::new(vec![DomainId::new(2), DomainId::new(0)]);
        assert_eq!(w.capturing_domain(0), Some(DomainId::new(2)));
        assert_eq!(w.capturing_domain(1), Some(DomainId::new(2)));
        assert_eq!(w.capturing_domain(2), Some(DomainId::new(0)));
        assert_eq!(w.capturing_domain(3), Some(DomainId::new(0)));
        assert_eq!(w.capturing_domain(4), None);
        assert!(w.is_at_speed_frame(1));
        assert!(!w.is_at_speed_frame(2));
        assert!(w.is_at_speed_frame(3));
    }

    #[test]
    #[should_panic(expected = "pulsed twice")]
    fn duplicate_domain_rejected() {
        CaptureWindow::new(vec![DomainId::new(0), DomainId::new(0)]);
    }

    #[test]
    fn transition_coverage_reported() {
        let (nl, pi, ff_a, inv, _) = inv_pipe();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let faults =
            vec![Fault::stem(inv, FaultKind::SlowToRise), Fault::stem(inv, FaultKind::SlowToFall)];
        let mut sim = TransitionSim::new(&cc, faults, CaptureWindow::all_domains(1));
        let mut base = cc.new_frame();
        base[pi.index()] = 0;
        base[ff_a.index()] = !0;
        sim.run_batch(&base, 2);
        let cov = sim.coverage();
        assert_eq!(cov.total, 2);
        assert_eq!(cov.detected, 1);
        assert!((cov.percent() - 50.0).abs() < 1e-9);
    }

    /// One wide transition batch grades exactly like the stack of
    /// 64-lane batches it packs (no dropping → exact counts; the
    /// detected set is batch-granularity-invariant either way).
    #[test]
    fn wide_transition_batch_equals_stacked_64_lane_batches() {
        fn check<W: LaneWord>() {
            let (nl, pi, _ff_a, inv, _ff_b) = inv_pipe();
            let cc = CompiledCircuit::compile(&nl).unwrap();
            let faults = vec![
                Fault::stem(inv, FaultKind::SlowToRise),
                Fault::stem(inv, FaultKind::SlowToFall),
            ];
            let word = |k: usize, node: usize| -> u64 {
                0xBF58_476D_1CE4_E5B9u64.rotate_left((k * 13 + node * 29) as u32)
            };

            let mut narrow = TransitionSim::new(&cc, faults.clone(), CaptureWindow::all_domains(1));
            narrow.set_drop_after(u32::MAX);
            for k in 0..W::WORDS {
                let mut base = cc.new_frame();
                base[pi.index()] = word(k, 0);
                for (i, &ff) in cc.dffs().iter().enumerate() {
                    base[ff.index()] = word(k, 1 + i);
                }
                narrow.run_batch(&base, 64);
            }

            let mut wide: WideTransitionSim<'_, W> =
                WideTransitionSim::new(&cc, faults.clone(), CaptureWindow::all_domains(1));
            wide.set_drop_after(u32::MAX);
            let mut base: Vec<W> = cc.new_wide_frame();
            for k in 0..W::WORDS {
                base[pi.index()].set_word(k, word(k, 0));
                for (i, &ff) in cc.dffs().iter().enumerate() {
                    base[ff.index()].set_word(k, word(k, 1 + i));
                }
            }
            wide.run_batch(&base, W::LANES);

            assert_eq!(wide.detections(), narrow.detections(), "{} lanes", W::LANES);
            assert_eq!(wide.coverage(), narrow.coverage(), "{} lanes", W::LANES);
            assert!(wide.detections().iter().any(|&d| d > 0), "scenario must detect something");
        }
        check::<u128>();
        check::<[u64; 4]>();
    }

    /// The kernel path replays the capture window bit-identically to the
    /// interpreter: same detections, coverage, and compaction across a
    /// two-domain design whose overlay state carries between frames.
    #[test]
    fn kernel_transition_grading_matches_interpreter_bit_for_bit() {
        let mut nl = Netlist::new("kpar");
        let pi = nl.add_input("pi");
        let mut prev = nl.add_dff(pi, DomainId::new(0));
        let mut sites = Vec::new();
        for i in 0..6 {
            let inv = nl.add_gate(GateKind::Not, &[prev]);
            sites.push(inv);
            prev = nl.add_dff(inv, DomainId::new((i % 2) as u16));
        }
        nl.add_output("q", prev);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let faults: Vec<Fault> = sites
            .iter()
            .flat_map(|&s| {
                [Fault::stem(s, FaultKind::SlowToRise), Fault::stem(s, FaultKind::SlowToFall)]
            })
            .collect();
        let observed = crate::WideStuckAtSim::<u64>::observe_all_captures(&cc);
        let keep = crate::grading_keep_set(&cc, &[&faults], &observed);
        let prog = std::sync::Arc::new(lbist_sim::KernelProgram::lower(&cc, &keep));

        let run = |kernel: bool, threads: usize| {
            let mut sim = TransitionSim::new(&cc, faults.clone(), CaptureWindow::all_domains(2));
            sim.set_threads(threads);
            if kernel {
                sim.set_kernel(Some(prog.clone()));
            }
            assert_eq!(sim.uses_kernel(), kernel);
            for seed in 0..4u64 {
                let mut base = cc.new_frame();
                base[pi.index()] = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for (i, &ff) in cc.dffs().iter().enumerate() {
                    base[ff.index()] = (seed ^ i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                }
                sim.run_batch(&base, 64);
            }
            (sim.detections().to_vec(), sim.coverage(), sim.active_faults())
        };

        let reference = run(false, 1);
        assert!(reference.1.detected > 0, "scenario must detect something");
        for threads in [1, 4] {
            let kernel = run(true, threads);
            assert_eq!(kernel.0, reference.0, "kernel detections differ ({threads} threads)");
            assert_eq!(kernel.1, reference.1, "kernel coverage differs ({threads} threads)");
            assert_eq!(kernel.2, reference.2, "kernel active count differs ({threads} threads)");
        }
    }

    /// Parallel transition grading (forced to several shards) reports the
    /// serial detection counts bit-for-bit, and compaction tracks drops.
    #[test]
    fn parallel_and_serial_transition_grading_agree() {
        let mut nl = Netlist::new("par");
        let pi = nl.add_input("pi");
        let mut prev = nl.add_dff(pi, DomainId::new(0));
        let mut sites = Vec::new();
        // A chain of inverters and flops across two domains gives a
        // fault list with varied excitation.
        for i in 0..6 {
            let inv = nl.add_gate(GateKind::Not, &[prev]);
            sites.push(inv);
            prev = nl.add_dff(inv, DomainId::new((i % 2) as u16));
        }
        nl.add_output("q", prev);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let faults: Vec<Fault> = sites
            .iter()
            .flat_map(|&s| {
                [Fault::stem(s, FaultKind::SlowToRise), Fault::stem(s, FaultKind::SlowToFall)]
            })
            .collect();

        let run = |threads: usize| {
            let mut sim = TransitionSim::new(&cc, faults.clone(), CaptureWindow::all_domains(2));
            if threads == 1 {
                sim = sim.serial();
            } else {
                sim.set_threads(threads);
            }
            for seed in 0..4u64 {
                let mut base = cc.new_frame();
                base[pi.index()] = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for (i, &ff) in cc.dffs().iter().enumerate() {
                    base[ff.index()] = (seed ^ i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                }
                sim.run_batch(&base, 64);
            }
            (sim.detections().to_vec(), sim.coverage(), sim.active_faults())
        };

        let serial = run(1);
        assert!(serial.1.detected > 0, "scenario must detect something");
        for threads in [2, 5] {
            let parallel = run(threads);
            assert_eq!(parallel.0, serial.0, "{threads}-thread detections differ");
            assert_eq!(parallel.1, serial.1, "{threads}-thread coverage differs");
            assert_eq!(parallel.2, serial.2, "{threads}-thread active count differs");
        }
        let undetected = serial.0.iter().filter(|&&d| d == 0).count();
        assert_eq!(serial.2, undetected, "active list holds exactly the undetected faults");
    }
}
