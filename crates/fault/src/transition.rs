//! Launch-on-capture transition-fault simulation across the paper's
//! double-capture window.
//!
//! The capture window (Fig. 2) issues, for each clock domain in `d3`-spaced
//! sequence, a pair of pulses `d2`/`d4` apart — the functional period. The
//! first pulse *launches* transitions (flip-flop outputs change from the
//! scanned-in state to captured functional data); the second pulse
//! *captures* the response one functional period later. A transition fault
//! is detected when the launched transition at its site fails to settle in
//! time and the resulting wrong value is captured into some flip-flop that
//! the unload then observes.
//!
//! The simulator models the whole window frame by frame:
//!
//! ```text
//! F0 (scan state) --C1(dom0)--> F1 --C2(dom0)--> F2 --C1(dom1)--> F3 ...
//! ```
//!
//! Odd frames (between a domain's two pulses) last one functional period —
//! only there can a slow transition be "caught". Even frames are the long
//! `d3`/`d5` intervals, where every transition has time to settle; fault
//! effects cross them only as wrong *values* already captured into
//! flip-flops, which the simulator carries in a per-fault state overlay.

use crate::propagate::Propagator;
use crate::{CoverageReport, Fault};
use lbist_netlist::{DomainId, GateKind, NodeId};
use lbist_sim::CompiledCircuit;
use std::collections::HashMap;

/// The capture-window schedule: which domains pulse, in which order.
///
/// Each listed domain receives two pulses; the `d3` gap orders domains so
/// inter-domain skew cannot corrupt capture (the paper sets `d3` larger
/// than the worst-case skew — the timing side of that argument lives in
/// `lbist-clock`).
///
/// # Example
///
/// ```
/// use lbist_fault::CaptureWindow;
/// use lbist_netlist::DomainId;
/// let w = CaptureWindow::all_domains(3);
/// assert_eq!(w.order().len(), 3);
/// assert_eq!(w.num_frames(), 7); // F0 + 2 per domain
/// let custom = CaptureWindow::new(vec![DomainId::new(1), DomainId::new(0)]);
/// assert_eq!(custom.order()[0], DomainId::new(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureWindow {
    order: Vec<DomainId>,
}

impl CaptureWindow {
    /// A window pulsing the given domains in the given order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty or repeats a domain.
    pub fn new(order: Vec<DomainId>) -> Self {
        assert!(!order.is_empty(), "a capture window pulses at least one domain");
        let mut seen = std::collections::HashSet::new();
        for d in &order {
            assert!(seen.insert(*d), "domain {d} pulsed twice in one window");
        }
        CaptureWindow { order }
    }

    /// Domains `0..n` in index order.
    pub fn all_domains(n: usize) -> Self {
        CaptureWindow::new((0..n).map(|i| DomainId::new(i as u16)).collect())
    }

    /// The pulse order.
    pub fn order(&self) -> &[DomainId] {
        &self.order
    }

    /// Number of evaluation frames the window spans (`1 + 2·domains`).
    pub fn num_frames(&self) -> usize {
        1 + 2 * self.order.len()
    }

    /// The domain captured between frame `f` and `f + 1`, if any.
    fn capturing_domain(&self, frame: usize) -> Option<DomainId> {
        // Captures happen after F0..F(2n-1): domain k pulses at boundaries
        // 2k (its launch C1) and 2k+1 (its capture C2).
        if frame >= 2 * self.order.len() {
            None
        } else {
            Some(self.order[frame / 2])
        }
    }

    /// `true` when the frame (by index) is an at-speed frame — between a
    /// domain's launch and capture pulses.
    pub fn is_at_speed_frame(&self, frame: usize) -> bool {
        frame > 0 && frame % 2 == 1 && frame < self.num_frames()
    }
}

/// Launch-on-capture transition-fault simulator.
///
/// Grades 64 scan patterns per [`TransitionSim::run_batch`]: the caller
/// loads the scan state (flip-flop words) and primary-input words of the
/// base frame; the simulator replays the whole double-capture window for
/// the fault-free circuit and then for every active fault, and compares
/// final flip-flop states — exactly what the unload-into-MISR observes.
#[derive(Debug)]
pub struct TransitionSim<'a> {
    cc: &'a CompiledCircuit,
    window: CaptureWindow,
    faults: Vec<Fault>,
    active: Vec<bool>,
    detections: Vec<u32>,
    drop_after: u32,
    patterns_run: u64,
    prop: Propagator,
    /// Fault-free value frames, one per window frame (reused per batch).
    good_frames: Vec<Vec<u64>>,
}

impl<'a> TransitionSim<'a> {
    /// Creates a simulator for `faults` (transition kinds only) under the
    /// given capture window.
    ///
    /// # Panics
    ///
    /// Panics if any fault is not a transition kind, or any fault is a
    /// branch fault (transition grading here is stem-based, the standard
    /// model granularity).
    pub fn new(cc: &'a CompiledCircuit, faults: Vec<Fault>, window: CaptureWindow) -> Self {
        assert!(
            faults.iter().all(|f| f.kind.is_transition() && f.is_stem()),
            "TransitionSim grades stem transition faults"
        );
        let n = faults.len();
        TransitionSim {
            prop: Propagator::new(cc),
            good_frames: vec![cc.new_frame(); window.num_frames()],
            cc,
            window,
            faults,
            active: vec![true; n],
            detections: vec![0; n],
            drop_after: 1,
            patterns_run: 0,
        }
    }

    /// Sets the n-detect drop budget (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn set_drop_after(&mut self, n: u32) {
        assert!(n > 0);
        self.drop_after = n;
    }

    /// Grades one batch of up to 64 scan patterns. `base` must carry the
    /// scan state in its flip-flop words and the held PI values; it is
    /// consumed as frame F0.
    ///
    /// Returns the number of newly dropped faults.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is outside `1..=64`.
    pub fn run_batch(&mut self, base: &[u64], num_patterns: usize) -> usize {
        assert!((1..=64).contains(&num_patterns));
        let lane_mask: u64 = if num_patterns == 64 { !0 } else { (1u64 << num_patterns) - 1 };
        self.compute_good_frames(base);
        self.patterns_run += num_patterns as u64;

        let nframes = self.window.num_frames();
        let mut newly_dropped = 0;
        for idx in 0..self.faults.len() {
            if !self.active[idx] {
                continue;
            }
            let fault = self.faults[idx];
            let site = fault.node;
            // Per-fault overlay of flip-flop states (faulty words).
            let mut ff_overlay: HashMap<NodeId, u64> = HashMap::new();
            let mut any_effect = false;

            for frame in 0..nframes {
                let at_speed = self.window.is_at_speed_frame(frame);
                // Injection: in an at-speed frame the site holds its
                // previous-frame value wherever the launch created the
                // fault's slow transition.
                let act = if at_speed {
                    let prev = self.good_frames[frame - 1][site.index()];
                    let cur = self.good_frames[frame][site.index()];
                    let rising = !prev & cur;
                    let falling = prev & !cur;
                    (match fault.kind {
                        crate::FaultKind::SlowToRise => rising,
                        crate::FaultKind::SlowToFall => falling,
                        _ => unreachable!(),
                    }) & lane_mask
                } else {
                    0
                };

                let mut dirty_seed: Vec<(NodeId, u64)> = Vec::new();
                for (&ff, &word) in &ff_overlay {
                    let good = self.good_frames[frame][ff.index()];
                    if word != good {
                        dirty_seed.push((ff, word));
                    }
                }
                if act == 0 && dirty_seed.is_empty() {
                    continue; // nothing differs in this frame
                }
                any_effect = true;

                self.prop.begin();
                for (ff, word) in dirty_seed {
                    self.prop.set(ff, word);
                    self.prop.enqueue_fanouts(self.cc, ff);
                }
                if act != 0 && self.cc.kind(site) != GateKind::Dff {
                    // The site's faulty value: good with the launched
                    // transition undone on activated lanes.
                    let cur = self.prop.value(site, &self.good_frames[frame]);
                    // Note: if the site is also downstream of a dirty FF the
                    // propagation below may recompute it; injecting before
                    // running keeps level order intact because the site's
                    // level precedes its fanouts.
                    self.prop.set(site, cur ^ act);
                    self.prop.enqueue_fanouts(self.cc, site);
                } else if act != 0 {
                    // Site is a flip-flop output: flip its frame value.
                    let cur = self.prop.value(site, &self.good_frames[frame]);
                    self.prop.set(site, cur ^ act);
                    self.prop.enqueue_fanouts(self.cc, site);
                }
                let good = &self.good_frames[frame];
                let pin = if act != 0 { Some(site) } else { None };
                self.prop.run(self.cc, good, pin, |_, _| {});

                // Frame boundary: capture.
                if let Some(dom) = self.window.capturing_domain(frame) {
                    for (i, &ff) in self.cc.dffs().iter().enumerate() {
                        if self.cc.dff_domain(i) != dom {
                            continue;
                        }
                        let d_src = self.cc.fanins(ff)[0];
                        let faulty_d = self.prop.value(d_src, good);
                        let good_next = self.good_frames[frame + 1][ff.index()];
                        if faulty_d != good_next {
                            ff_overlay.insert(ff, faulty_d);
                        } else {
                            ff_overlay.remove(&ff);
                        }
                    }
                }
            }
            let _ = any_effect;

            // Detection: any flip-flop whose final state differs is shifted
            // out through the MISR.
            let final_frame = &self.good_frames[nframes - 1];
            let mut detected: u64 = 0;
            for (&ff, &word) in &ff_overlay {
                detected |= (word ^ final_frame[ff.index()]) & lane_mask;
            }
            if detected != 0 {
                self.detections[idx] = self.detections[idx].saturating_add(detected.count_ones());
                if self.detections[idx] >= self.drop_after {
                    self.active[idx] = false;
                    newly_dropped += 1;
                }
            }
        }
        newly_dropped
    }

    fn compute_good_frames(&mut self, base: &[u64]) {
        let nframes = self.window.num_frames();
        self.good_frames[0].copy_from_slice(base);
        self.cc.eval2(&mut self.good_frames[0]);
        for frame in 1..nframes {
            let (prev_slice, rest) = self.good_frames.split_at_mut(frame);
            let prev = &prev_slice[frame - 1];
            let cur = &mut rest[0];
            cur.copy_from_slice(prev);
            let dom = self
                .window
                .capturing_domain(frame - 1)
                .expect("every non-final frame boundary captures");
            for (i, &ff) in self.cc.dffs().iter().enumerate() {
                if self.cc.dff_domain(i) == dom {
                    let d_src = self.cc.fanins(ff)[0];
                    cur[ff.index()] = prev[d_src.index()];
                }
            }
            self.cc.eval2(cur);
        }
    }

    /// The faults being graded.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Per-fault detection counts.
    pub fn detections(&self) -> &[u32] {
        &self.detections
    }

    /// Faults not yet detected.
    pub fn undetected(&self) -> Vec<Fault> {
        self.faults
            .iter()
            .zip(&self.detections)
            .filter(|&(_, &d)| d == 0)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Current coverage.
    pub fn coverage(&self) -> CoverageReport {
        CoverageReport::from_detections(&self.faults, &self.detections, self.patterns_run)
    }

    /// The window schedule in use.
    pub fn window(&self) -> &CaptureWindow {
        &self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use lbist_netlist::{DomainId, GateKind, Netlist};

    /// ff_a -> NOT -> ff_b, both domain 0. Scan in ff_a=0: C1 captures
    /// ff_b=NOT(0)=1 while ff_a reloads its own D... build with explicit
    /// feedback so values are controlled.
    fn inv_pipe() -> (Netlist, NodeId, NodeId, NodeId, NodeId) {
        let mut nl = Netlist::new("pipe");
        let pi = nl.add_input("pi");
        let ff_a = nl.add_dff(pi, DomainId::new(0));
        let inv = nl.add_gate(GateKind::Not, &[ff_a]);
        let ff_b = nl.add_dff(inv, DomainId::new(0));
        nl.add_output("q", ff_b);
        (nl, pi, ff_a, inv, ff_b)
    }

    #[test]
    fn single_capture_cannot_detect_transitions() {
        // With only ONE pulse (model: window where the domain appears but we
        // check after frame 1 semantics), a slow transition launched by the
        // pulse is never sampled again. Our window always double-pulses, so
        // emulate single capture by checking that detection requires the
        // at-speed frame: a fault whose site never transitions in the
        // window is undetected.
        let (nl, pi, ff_a, inv, _ff_b) = inv_pipe();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let w = CaptureWindow::all_domains(1);
        let faults = vec![Fault::stem(inv, FaultKind::SlowToRise)];
        let mut sim = TransitionSim::new(&cc, faults, w);
        let mut base = cc.new_frame();
        // pi=0 and ff_a=0: inv=1 stays 1 all window -> no rising transition
        // at inv; STR cannot be excited.
        base[pi.index()] = 0;
        base[ff_a.index()] = 0;
        sim.run_batch(&base, 4);
        assert_eq!(sim.detections()[0], 0);
    }

    #[test]
    fn launch_on_capture_detects_slow_to_rise() {
        let (nl, pi, ff_a, inv, _ff_b) = inv_pipe();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let w = CaptureWindow::all_domains(1);
        let faults = vec![Fault::stem(inv, FaultKind::SlowToRise)];
        let mut sim = TransitionSim::new(&cc, faults, w);
        let mut base = cc.new_frame();
        // Scan state: ff_a=1 (inv=0). PI=0, so C1 captures ff_a=0, making
        // inv rise 0->1 in the at-speed frame; C2 should capture ff_b=1 but
        // the slow-to-rise keeps inv at 0 -> ff_b captures 0. Detected.
        base[pi.index()] = 0;
        base[ff_a.index()] = !0;
        sim.run_batch(&base, 8);
        assert_eq!(sim.detections()[0], 8, "STR detected in every lane");
    }

    #[test]
    fn slow_to_fall_needs_falling_launch() {
        let (nl, pi, ff_a, inv, _ff_b) = inv_pipe();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let w = CaptureWindow::all_domains(1);
        let faults =
            vec![Fault::stem(inv, FaultKind::SlowToFall), Fault::stem(inv, FaultKind::SlowToRise)];
        let mut sim = TransitionSim::new(&cc, faults, w);
        let mut base = cc.new_frame();
        // ff_a=0 (inv=1), PI=1: C1 captures ff_a=1, inv falls 1->0.
        base[pi.index()] = !0;
        base[ff_a.index()] = 0;
        sim.run_batch(&base, 8);
        assert_eq!(sim.detections()[0], 8, "STF detected");
        assert_eq!(sim.detections()[1], 0, "STR not excited by a falling launch");
    }

    #[test]
    fn cross_domain_effect_carries_through_later_capture() {
        // dom0: ff_a -> inv -> ff_b(dom0); ff_b -> buf -> ff_c(dom1).
        // A fault detected into ff_b at dom0's C2 then propagates into
        // ff_c when dom1 captures later in the same window.
        let mut nl = Netlist::new("xdom");
        let pi = nl.add_input("pi");
        let ff_a = nl.add_dff(pi, DomainId::new(0));
        let inv = nl.add_gate(GateKind::Not, &[ff_a]);
        let ff_b = nl.add_dff(inv, DomainId::new(0));
        let buf = nl.add_gate(GateKind::Buf, &[ff_b]);
        let ff_c = nl.add_dff(buf, DomainId::new(1));
        nl.add_output("q", ff_c);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let w = CaptureWindow::all_domains(2);
        let faults = vec![Fault::stem(inv, FaultKind::SlowToRise)];
        let mut sim = TransitionSim::new(&cc, faults, w);
        let mut base = cc.new_frame();
        base[pi.index()] = 0;
        base[ff_a.index()] = !0; // launch a rise at inv
        sim.run_batch(&base, 1);
        assert_eq!(sim.detections()[0], 1);
    }

    #[test]
    fn domain_order_respects_schedule() {
        let w = CaptureWindow::new(vec![DomainId::new(2), DomainId::new(0)]);
        assert_eq!(w.capturing_domain(0), Some(DomainId::new(2)));
        assert_eq!(w.capturing_domain(1), Some(DomainId::new(2)));
        assert_eq!(w.capturing_domain(2), Some(DomainId::new(0)));
        assert_eq!(w.capturing_domain(3), Some(DomainId::new(0)));
        assert_eq!(w.capturing_domain(4), None);
        assert!(w.is_at_speed_frame(1));
        assert!(!w.is_at_speed_frame(2));
        assert!(w.is_at_speed_frame(3));
    }

    #[test]
    #[should_panic(expected = "pulsed twice")]
    fn duplicate_domain_rejected() {
        CaptureWindow::new(vec![DomainId::new(0), DomainId::new(0)]);
    }

    #[test]
    fn transition_coverage_reported() {
        let (nl, pi, ff_a, inv, _) = inv_pipe();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let faults = vec![
            Fault::stem(inv, FaultKind::SlowToRise),
            Fault::stem(inv, FaultKind::SlowToFall),
        ];
        let mut sim = TransitionSim::new(&cc, faults, CaptureWindow::all_domains(1));
        let mut base = cc.new_frame();
        base[pi.index()] = 0;
        base[ff_a.index()] = !0;
        sim.run_batch(&base, 2);
        let cov = sim.coverage();
        assert_eq!(cov.total, 2);
        assert_eq!(cov.detected, 1);
        assert!((cov.percent() - 50.0).abs() < 1e-9);
    }
}
