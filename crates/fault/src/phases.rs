//! Phase-timing handles for the batch pipeline inside the fault
//! simulators.
//!
//! A batch spends its time in two places the caller cannot tell apart
//! from outside: the shared fault-free evaluation (`sim`) and the
//! sharded per-fault propagation plus serial merge (`detect`). Sessions
//! that want a phase trace install a [`SimPhaseMetrics`] whose
//! histograms were created on their registry; the default handles are
//! no-ops, so an uninstrumented simulator never reads the clock.
//!
//! Timing is observational only: spans never influence grading, so
//! results stay bit-identical with metrics on or off.

use lbist_obs::Histogram;

/// Per-batch phase timers a grading session installs on its simulator
/// via `set_phase_metrics`. Each histogram receives one elapsed-ns
/// record per batch.
#[derive(Clone, Debug, Default)]
pub struct SimPhaseMetrics {
    /// Fault-free evaluation of the batch's frames.
    pub sim_ns: Histogram,
    /// Sharded fault propagation (dispatch, retries) plus the serial
    /// detection merge.
    pub detect_ns: Histogram,
}
