//! Coverage accounting in the shape of Table 1's result rows.

use crate::Fault;
use std::fmt;

/// A fault-coverage summary over a (collapsed) fault list.
///
/// # Example
///
/// ```
/// use lbist_fault::{CoverageReport, Fault, FaultKind};
/// use lbist_netlist::NodeId;
/// let faults = vec![
///     Fault::stem(NodeId::from_index(0), FaultKind::StuckAt0),
///     Fault::stem(NodeId::from_index(0), FaultKind::StuckAt1),
/// ];
/// let report = CoverageReport::from_detections(&faults, &[3, 0], 64);
/// assert_eq!(report.detected, 1);
/// assert_eq!(report.fault_coverage(), 0.5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CoverageReport {
    /// Faults graded (size of the collapsed list).
    pub total: usize,
    /// Faults detected at least once.
    pub detected: usize,
    /// Faults detected at least 5 times (an n-detect quality signal; logic
    /// BIST gets this "naturally", as the paper's introduction notes).
    pub detected_5x: usize,
    /// Patterns applied so far.
    pub patterns: u64,
    /// Average detections per detected fault (capped by the drop budget
    /// under which the simulation ran).
    pub mean_detections: f64,
}

impl CoverageReport {
    /// Builds a report from per-fault detection counts.
    ///
    /// # Panics
    ///
    /// Panics if `faults` and `detections` lengths differ.
    pub fn from_detections(faults: &[Fault], detections: &[u32], patterns: u64) -> Self {
        assert_eq!(faults.len(), detections.len());
        let detected = detections.iter().filter(|&&d| d > 0).count();
        let detected_5x = detections.iter().filter(|&&d| d >= 5).count();
        let sum: u64 = detections.iter().map(|&d| d as u64).sum();
        CoverageReport {
            total: faults.len(),
            detected,
            detected_5x,
            patterns,
            mean_detections: if detected == 0 { 0.0 } else { sum as f64 / detected as f64 },
        }
    }

    /// Fault coverage as a fraction in `[0, 1]`.
    pub fn fault_coverage(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total as f64
    }

    /// Fault coverage as the percentage Table 1 prints (e.g. `93.82`).
    pub fn percent(&self) -> f64 {
        self.fault_coverage() * 100.0
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} faults detected = {:.2}% ({} patterns)",
            self.detected,
            self.total,
            self.percent(),
            self.patterns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use lbist_netlist::NodeId;

    fn faults(n: usize) -> Vec<Fault> {
        (0..n).map(|i| Fault::stem(NodeId::from_index(i), FaultKind::StuckAt0)).collect()
    }

    #[test]
    fn empty_list_is_full_coverage() {
        let r = CoverageReport::from_detections(&[], &[], 0);
        assert_eq!(r.fault_coverage(), 1.0);
    }

    #[test]
    fn percent_matches_fraction() {
        let r = CoverageReport::from_detections(&faults(4), &[1, 0, 2, 9], 128);
        assert_eq!(r.detected, 3);
        assert!((r.percent() - 75.0).abs() < 1e-12);
        assert_eq!(r.detected_5x, 1);
        assert!((r.mean_detections - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_the_numbers() {
        let r = CoverageReport::from_detections(&faults(2), &[1, 0], 64);
        let s = r.to_string();
        assert!(s.contains("1/2"));
        assert!(s.contains("50.00%"));
    }
}
