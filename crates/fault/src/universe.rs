//! Fault enumeration and structural equivalence collapsing.

use crate::{Fault, FaultKind};
use lbist_netlist::{Fanouts, GateKind, Netlist, NodeId};

/// The complete fault list of a design plus its equivalence classes.
///
/// Faults are enumerated on every *testable* site: output stems of primary
/// inputs, logic gates and flip-flop `Q` outputs, and input branches of
/// logic gates and flip-flop `D` pins. Constants, X-sources and output
/// markers carry no faults (ties are untestable; markers are not physical).
///
/// Structural equivalence collapsing merges:
///
/// * **wire classes** — a single-fanout stem is the same physical net as
///   the branch it feeds;
/// * **gate rules** — e.g. any AND input SA0 ≡ the output SA0, any NAND
///   input SA0 ≡ the output SA1, a NOT input SA-v ≡ the output SA-v̄.
///
/// Coverage is conventionally reported over the collapsed classes, which is
/// what [`FaultUniverse::representatives`] exposes.
///
/// # Example
///
/// ```
/// use lbist_netlist::{Netlist, GateKind};
/// use lbist_fault::FaultUniverse;
///
/// let mut nl = Netlist::new("u");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate(GateKind::And, &[a, b]);
/// nl.add_output("y", g);
///
/// let u = FaultUniverse::stuck_at(&nl);
/// // a/SA0, b/SA0 and g's input branches SA0 all collapse into g/SA0.
/// assert!(u.num_collapsed() < u.num_total());
/// ```
#[derive(Clone, Debug)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
    class_of: Vec<u32>,
    representatives: Vec<u32>,
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, i: u32) -> u32 {
        let mut root = i;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = i;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller index wins, so representatives are stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

fn stem_site_eligible(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::Input
            | GateKind::Buf
            | GateKind::Not
            | GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
            | GateKind::Mux2
            | GateKind::Dff
    )
}

fn branch_site_eligible(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::Buf
            | GateKind::Not
            | GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
            | GateKind::Mux2
            | GateKind::Dff
    )
}

impl FaultUniverse {
    /// Enumerates and collapses the single-stuck-at universe of `netlist`.
    pub fn stuck_at(netlist: &Netlist) -> Self {
        Self::build(netlist, FaultKind::StuckAt0, FaultKind::StuckAt1)
    }

    /// Enumerates and collapses the transition-delay universe of `netlist`.
    ///
    /// The same structural classes apply: a slow-to-rise on a single-fanout
    /// stem is a slow-to-rise on its branch, and a slow output transition
    /// of an AND is indistinguishable from the corresponding slow input
    /// transition for the controlling polarity.
    pub fn transition(netlist: &Netlist) -> Self {
        Self::build(netlist, FaultKind::SlowToRise, FaultKind::SlowToFall)
    }

    fn build(netlist: &Netlist, kind0: FaultKind, kind1: FaultKind) -> Self {
        // kind0 plays the role of "value 0 at the site" (SA0 / slow-to-rise
        // = stays 0), kind1 the role of "value 1".
        let fanouts = Fanouts::compute(netlist);
        let mut faults: Vec<Fault> = Vec::new();
        // Index maps: stem_base[node] -> index of kind0 stem fault;
        // branch bases per (node, pin) in enumeration order.
        let mut stem_base = vec![u32::MAX; netlist.len()];
        for id in netlist.ids() {
            if stem_site_eligible(netlist.kind(id)) {
                stem_base[id.index()] = faults.len() as u32;
                faults.push(Fault::stem(id, kind0));
                faults.push(Fault::stem(id, kind1));
            }
        }
        let mut branch_base = vec![u32::MAX; netlist.len()];
        for id in netlist.ids() {
            if branch_site_eligible(netlist.kind(id)) {
                branch_base[id.index()] = faults.len() as u32;
                for pin in 0..netlist.fanins(id).len() {
                    let src = netlist.fanins(id)[pin];
                    if !stem_site_eligible(netlist.kind(src)) {
                        // Branch fed by a constant/X-source: untestable, skip.
                        // Two placeholder slots keep pin arithmetic simple.
                        faults.push(Fault::branch(id, pin as u8, kind0));
                        faults.push(Fault::branch(id, pin as u8, kind1));
                        continue;
                    }
                    faults.push(Fault::branch(id, pin as u8, kind0));
                    faults.push(Fault::branch(id, pin as u8, kind1));
                }
            }
        }

        let mut uf = UnionFind::new(faults.len());
        let branch_idx = |node: NodeId, pin: usize, one: bool| -> u32 {
            branch_base[node.index()] + 2 * pin as u32 + one as u32
        };
        let stem_idx = |node: NodeId, one: bool| -> u32 { stem_base[node.index()] + one as u32 };

        for id in netlist.ids() {
            let kind = netlist.kind(id);
            if !branch_site_eligible(kind) {
                continue;
            }
            for pin in 0..netlist.fanins(id).len() {
                let src = netlist.fanins(id)[pin];
                if stem_base[src.index()] == u32::MAX {
                    continue;
                }
                // Wire rule: single fanout means stem and branch are one net.
                if fanouts.degree(src) == 1 {
                    uf.union(branch_idx(id, pin, false), stem_idx(src, false));
                    uf.union(branch_idx(id, pin, true), stem_idx(src, true));
                }
            }
            if stem_base[id.index()] == u32::MAX {
                continue; // no stem on this gate (cannot apply gate rules)
            }
            // Gate rules: controlling-value input faults are equivalent to
            // the corresponding output fault.
            let npins = netlist.fanins(id).len();
            match kind {
                GateKind::Buf => {
                    uf.union(branch_idx(id, 0, false), stem_idx(id, false));
                    uf.union(branch_idx(id, 0, true), stem_idx(id, true));
                }
                GateKind::Not => {
                    uf.union(branch_idx(id, 0, false), stem_idx(id, true));
                    uf.union(branch_idx(id, 0, true), stem_idx(id, false));
                }
                GateKind::And => {
                    for pin in 0..npins {
                        uf.union(branch_idx(id, pin, false), stem_idx(id, false));
                    }
                }
                GateKind::Nand => {
                    for pin in 0..npins {
                        uf.union(branch_idx(id, pin, false), stem_idx(id, true));
                    }
                }
                GateKind::Or => {
                    for pin in 0..npins {
                        uf.union(branch_idx(id, pin, true), stem_idx(id, true));
                    }
                }
                GateKind::Nor => {
                    for pin in 0..npins {
                        uf.union(branch_idx(id, pin, true), stem_idx(id, false));
                    }
                }
                // XOR/XNOR/MUX2/DFF: no structural equivalences.
                _ => {}
            }
        }

        // Remove the untestable placeholder faults (branches fed by
        // constants/X-sources) by filtering classes that contain them.
        let mut untestable = vec![false; faults.len()];
        for id in netlist.ids() {
            if branch_base[id.index()] == u32::MAX {
                continue;
            }
            for pin in 0..netlist.fanins(id).len() {
                let src = netlist.fanins(id)[pin];
                if !stem_site_eligible(netlist.kind(src)) {
                    untestable[branch_idx(id, pin, false) as usize] = true;
                    untestable[branch_idx(id, pin, true) as usize] = true;
                }
            }
        }

        let mut class_of = vec![0u32; faults.len()];
        let mut representatives = Vec::new();
        let mut keep = Vec::with_capacity(faults.len());
        let mut root_to_class: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        let mut kept_faults = Vec::new();
        for i in 0..faults.len() as u32 {
            if untestable[i as usize] {
                continue;
            }
            let root = uf.find(i);
            let class = *root_to_class.entry(root).or_insert_with(|| {
                let c = representatives.len() as u32;
                representatives.push(kept_faults.len() as u32);
                c
            });
            if representatives[class as usize] == kept_faults.len() as u32 {
                // First member of the class becomes the representative.
            }
            keep.push((i, class));
            kept_faults.push(faults[i as usize]);
        }
        // Re-index: class_of is parallel to kept_faults.
        class_of.truncate(0);
        class_of.extend(keep.iter().map(|&(_, c)| c));

        FaultUniverse { faults: kept_faults, class_of, representatives }
    }

    /// Every enumerated (testable) fault, uncollapsed.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Total number of (testable) faults before collapsing.
    pub fn num_total(&self) -> usize {
        self.faults.len()
    }

    /// Number of equivalence classes.
    pub fn num_collapsed(&self) -> usize {
        self.representatives.len()
    }

    /// The equivalence-class index of fault `i` (parallel to
    /// [`FaultUniverse::faults`]).
    pub fn class_of(&self, i: usize) -> u32 {
        self.class_of[i]
    }

    /// One representative fault per equivalence class, in stable order.
    pub fn representatives(&self) -> Vec<Fault> {
        self.representatives.iter().map(|&i| self.faults[i as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbist_netlist::DomainId;

    fn and2() -> Netlist {
        let mut nl = Netlist::new("and2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]);
        nl.add_output("y", g);
        nl
    }

    #[test]
    fn and_gate_collapsing_matches_textbook() {
        // AND2 with PIs: 6 stem faults (a0,a1,b0,b1,g0,g1) + 4 branch
        // faults. Classes: {a0,g.0/SA0,g0,b0,g.1/SA0} (wire+gate rules),
        // {a1,g.0/SA1}, {b1,g.1/SA1}, {g1}. Textbook answer: 4 classes for
        // the gate cone... plus output stem g/SA1 belongs with a1? No:
        // non-controlling input SA1 on AND is *not* equivalent to output
        // SA1 (only dominant). So: classes = {a0,b0,branches SA0,g0},
        // {a1, branch0 SA1}, {b1, branch1 SA1}, {g1} = 4.
        let nl = and2();
        let u = FaultUniverse::stuck_at(&nl);
        assert_eq!(u.num_total(), 10);
        assert_eq!(u.num_collapsed(), 4);
    }

    #[test]
    fn inverter_chain_collapses_to_two_classes() {
        // a -> NOT -> NOT -> y : every fault is equivalent to one of two
        // classes (the wire + inversion rules chain through).
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let n1 = nl.add_gate(GateKind::Not, &[a]);
        let n2 = nl.add_gate(GateKind::Not, &[n1]);
        nl.add_output("y", n2);
        let u = FaultUniverse::stuck_at(&nl);
        assert_eq!(u.num_collapsed(), 2);
    }

    #[test]
    fn fanout_branches_not_collapsed_with_stem() {
        // a feeds two gates: branch faults must stay distinct from the stem.
        let mut nl = Netlist::new("fan");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Xor, &[a, b]);
        let g2 = nl.add_gate(GateKind::Xor, &[a, b]);
        nl.add_output("y1", g1);
        nl.add_output("y2", g2);
        let u = FaultUniverse::stuck_at(&nl);
        // XOR has no gate rules; b also fans out twice. Nothing collapses.
        assert_eq!(u.num_collapsed(), u.num_total());
    }

    #[test]
    fn xsource_and_const_sites_excluded() {
        let mut nl = Netlist::new("x");
        let x = nl.add_xsource();
        let c = nl.add_const(true);
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::And, &[x, c]);
        let h = nl.add_gate(GateKind::Or, &[g, a]);
        nl.add_output("y", h);
        let u = FaultUniverse::stuck_at(&nl);
        for f in u.faults() {
            assert_ne!(f.node, x, "no faults on X-source stems");
            assert_ne!(f.node, c, "no faults on constant stems");
            if f.node == g {
                // g's input branches are fed by x and c: untestable, dropped.
                assert!(f.is_stem(), "branch {f} on untestable pin survived");
            }
        }
    }

    #[test]
    fn dff_pins_carry_faults_but_do_not_collapse_across() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let inv = nl.add_gate(GateKind::Not, &[a]);
        let q = nl.add_dff(inv, DomainId::new(0));
        nl.add_output("y", q);
        let u = FaultUniverse::stuck_at(&nl);
        let has_q_stem = u.faults().iter().any(|f| f.node == q && f.is_stem());
        let has_d_branch = u.faults().iter().any(|f| f.node == q && !f.is_stem());
        assert!(has_q_stem && has_d_branch);
        // D-branch collapses with inv's stem (wire rule), never with Q.
        let reps = u.representatives();
        let q_classes: Vec<&Fault> = reps.iter().filter(|f| f.node == q).collect();
        assert_eq!(q_classes.len(), 2, "Q stem SA0/SA1 remain distinct classes");
    }

    #[test]
    fn transition_universe_mirrors_stuck_at_structure() {
        let nl = and2();
        let sa = FaultUniverse::stuck_at(&nl);
        let tr = FaultUniverse::transition(&nl);
        assert_eq!(sa.num_total(), tr.num_total());
        assert_eq!(sa.num_collapsed(), tr.num_collapsed());
        assert!(tr.faults().iter().all(|f| f.kind.is_transition()));
    }

    #[test]
    fn representatives_are_stable_and_unique() {
        let nl = and2();
        let u = FaultUniverse::stuck_at(&nl);
        let reps = u.representatives();
        assert_eq!(reps.len(), u.num_collapsed());
        let mut seen = std::collections::HashSet::new();
        for f in &reps {
            assert!(seen.insert(*f), "duplicate representative {f}");
        }
        // Deterministic across rebuilds.
        assert_eq!(reps, FaultUniverse::stuck_at(&nl).representatives());
    }
}
