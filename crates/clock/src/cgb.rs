//! The clock gating block: synthesising the Fig. 2 waveforms.

use crate::skew::SkewModel;
use crate::waveform::{render_chart, render_chart_range, DigitalWave, Pulse, PulseTrain};
use lbist_netlist::DomainId;
use std::error::Error;
use std::fmt;

/// Per-domain timing parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainTimingPlan {
    /// The clock domain.
    pub domain: DomainId,
    /// Functional clock period — the capture pulse pair is exactly this
    /// far apart (`d2`/`d4` in Fig. 2). 250 MHz → 4000 ps.
    pub functional_period_ps: u64,
}

impl DomainTimingPlan {
    /// Builds a plan from a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is not positive.
    pub fn from_mhz(domain: DomainId, freq_mhz: f64) -> Self {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        DomainTimingPlan { domain, functional_period_ps: (1_000_000.0 / freq_mhz).round() as u64 }
    }
}

/// The complete capture-window timing recipe (Fig. 2's `d1..d5`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureTimingPlan {
    /// Slow shift clock period (shared by all domains during shift).
    pub shift_period_ps: u64,
    /// Shift cycles per load/unload (max chain length plus margin).
    pub shift_cycles: usize,
    /// Dead time from the last shift pulse to the first capture pulse
    /// (`d1`) — SE has this long to settle; "can be as long as desired".
    pub d1_ps: u64,
    /// Dead time between one domain's second pulse and the next domain's
    /// first (`d3`) — must exceed the worst inter-domain skew.
    pub d3_ps: u64,
    /// Dead time from the last capture pulse back to shifting (`d5`).
    pub d5_ps: u64,
    /// Clock pulse width.
    pub pulse_width_ps: u64,
    /// The domains, in capture order.
    pub domains: Vec<DomainTimingPlan>,
}

impl CaptureTimingPlan {
    /// A reasonable default plan: 25 MHz shift, generous dead-times.
    pub fn with_domains(domains: Vec<DomainTimingPlan>, shift_cycles: usize) -> Self {
        CaptureTimingPlan {
            shift_period_ps: 40_000, // 25 MHz shift clock
            shift_cycles,
            d1_ps: 100_000,
            d3_ps: 20_000,
            d5_ps: 100_000,
            pulse_width_ps: 1_000,
            domains,
        }
    }

    /// Verifies the paper's timing properties against a skew model:
    /// at-speed pulse pairs, slow SE slack, and `d3 >` max inter-domain
    /// skew. Generates the waveforms with [`ClockGatingBlock::generate`]
    /// and delegates to [`CaptureTimingPlan::verify_waveforms`].
    ///
    /// # Errors
    ///
    /// Returns the first [`TimingViolation`] found.
    pub fn verify(&self, skew: &SkewModel) -> Result<(), TimingViolation> {
        self.verify_waveforms(&ClockGatingBlock::generate(self), skew)
    }

    /// Verifies arbitrary waveforms against this plan — the form a silicon
    /// validation bench would use, where the waves come from a probe, not
    /// from the generator. This is what catches *test frequency
    /// manipulation*: waveforms whose capture pulse gap is anything other
    /// than the domain's true functional period fail `NotAtSpeed`.
    ///
    /// # Errors
    ///
    /// Returns the first [`TimingViolation`] found.
    pub fn verify_waveforms(
        &self,
        waves: &CgbWaveforms,
        skew: &SkewModel,
    ) -> Result<(), TimingViolation> {
        // 1. At-speed: each domain's two capture pulses are exactly one
        //    functional period apart.
        for (plan, train) in self.domains.iter().zip(&waves.capture_clocks) {
            let rises = train.rise_times();
            let capture_rises = &rises[self.shift_cycles..];
            if capture_rises.len() != 2 {
                return Err(TimingViolation::WrongPulseCount {
                    domain: plan.domain,
                    got: capture_rises.len(),
                });
            }
            let gap = capture_rises[1] - capture_rises[0];
            if gap != plan.functional_period_ps {
                return Err(TimingViolation::NotAtSpeed {
                    domain: plan.domain,
                    gap_ps: gap,
                    functional_period_ps: plan.functional_period_ps,
                });
            }
        }
        // 2. SE slack: distance from SE fall to any capture pulse and from
        //    the last capture pulse to SE rise is at least d1/d5.
        let se_fall = waves.scan_enable.transitions()[0].0;
        let first_capture = waves
            .capture_clocks
            .iter()
            .filter_map(|t| t.rise_times().get(self.shift_cycles).copied())
            .min();
        if let Some(fc) = first_capture {
            if fc - se_fall < self.d1_ps {
                return Err(TimingViolation::ScanEnableTooFast {
                    slack_ps: fc - se_fall,
                    required_ps: self.d1_ps,
                });
            }
        }
        // 3. d3 beats skew.
        let max_skew = skew.max_inter_domain_skew_ps();
        if self.d3_ps <= max_skew {
            return Err(TimingViolation::CaptureGapTooSmall {
                d3_ps: self.d3_ps,
                skew_ps: max_skew,
            });
        }
        Ok(())
    }
}

/// A timing-property violation found by [`CaptureTimingPlan::verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimingViolation {
    /// A domain did not get exactly two capture pulses.
    WrongPulseCount {
        /// Offending domain.
        domain: DomainId,
        /// Pulses seen in the capture window.
        got: usize,
    },
    /// Launch-to-capture gap differs from the functional period.
    NotAtSpeed {
        /// Offending domain.
        domain: DomainId,
        /// Observed pulse gap.
        gap_ps: u64,
        /// The domain's functional period.
        functional_period_ps: u64,
    },
    /// SE transitions too close to a capture pulse.
    ScanEnableTooFast {
        /// Observed slack.
        slack_ps: u64,
        /// Required dead time.
        required_ps: u64,
    },
    /// The inter-domain gap does not clear the worst skew.
    CaptureGapTooSmall {
        /// Configured `d3`.
        d3_ps: u64,
        /// Worst-case inter-domain skew.
        skew_ps: u64,
    },
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingViolation::WrongPulseCount { domain, got } => {
                write!(f, "domain {domain} received {got} capture pulses instead of 2")
            }
            TimingViolation::NotAtSpeed { domain, gap_ps, functional_period_ps } => write!(
                f,
                "domain {domain} capture gap {gap_ps} ps differs from functional period {functional_period_ps} ps"
            ),
            TimingViolation::ScanEnableTooFast { slack_ps, required_ps } => {
                write!(f, "scan-enable slack {slack_ps} ps below required {required_ps} ps")
            }
            TimingViolation::CaptureGapTooSmall { d3_ps, skew_ps } => {
                write!(f, "d3 = {d3_ps} ps does not clear inter-domain skew {skew_ps} ps")
            }
        }
    }
}

impl Error for TimingViolation {}

/// The waveforms one BIST load/capture/unload cycle produces.
#[derive(Clone, Debug)]
pub struct CgbWaveforms {
    /// Per-domain gated test clocks (`TCK1`, `TCK2`, ... in Fig. 2), each
    /// carrying the shift burst plus its two capture pulses.
    pub capture_clocks: Vec<PulseTrain>,
    /// The single slow scan-enable.
    pub scan_enable: DigitalWave,
    /// End of the modelled window.
    pub end_ps: u64,
}

impl CgbWaveforms {
    /// ASCII chart of all waveforms (the Fig. 2 picture).
    pub fn render(&self, resolution_ps: u64) -> String {
        let trains: Vec<&PulseTrain> = self.capture_clocks.iter().collect();
        render_chart(&trains, &[&self.scan_enable], self.end_ps, resolution_ps)
    }

    /// Zoomed ASCII chart of `[from_ps, until_ps]` (e.g. just the capture
    /// window, where the double pulses are visible).
    pub fn render_window(&self, from_ps: u64, until_ps: u64, resolution_ps: u64) -> String {
        let trains: Vec<&PulseTrain> = self.capture_clocks.iter().collect();
        render_chart_range(&trains, &[&self.scan_enable], from_ps, until_ps, resolution_ps)
    }
}

/// The clock gating block of Fig. 1: turns free-running functional clocks
/// into the shift bursts and double-capture pulse pairs of Fig. 2.
#[derive(Debug)]
pub struct ClockGatingBlock;

impl ClockGatingBlock {
    /// Generates one shift window followed by one capture window.
    ///
    /// Shift: `shift_cycles` pulses of the slow shift clock on every
    /// domain simultaneously, SE high. Capture: SE low, then for each
    /// domain in order a pulse pair one functional period apart, pairs
    /// separated by `d3`; finally SE returns high after `d5`.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no domains, a zero shift period, or pulse
    /// widths that do not fit the smallest functional period.
    pub fn generate(plan: &CaptureTimingPlan) -> CgbWaveforms {
        assert!(!plan.domains.is_empty(), "plan needs at least one domain");
        assert!(plan.shift_period_ps > 0);
        for d in &plan.domains {
            assert!(
                plan.pulse_width_ps < d.functional_period_ps,
                "pulse width must fit inside the functional period of {}",
                d.domain
            );
        }
        let mut clocks: Vec<PulseTrain> = plan
            .domains
            .iter()
            .map(|d| PulseTrain::new(format!("TCK{}", d.domain.index() + 1)))
            .collect();

        // Shift window: all domains pulse together at the slow rate.
        let mut t = plan.shift_period_ps; // first pulse after one period
        let mut last_shift_rise = 0;
        for _ in 0..plan.shift_cycles {
            for train in &mut clocks {
                train.push(Pulse::new(t, t + plan.pulse_width_ps));
            }
            last_shift_rise = t;
            t += plan.shift_period_ps;
        }

        // SE falls d1-early relative to the first capture pulse.
        let first_capture = last_shift_rise + plan.pulse_width_ps + plan.d1_ps;
        let mut se = DigitalWave::new("SE", true);
        se.transition_to(false, last_shift_rise + plan.pulse_width_ps);

        // Capture window: staggered pulse pairs.
        let mut cursor = first_capture;
        for (i, d) in plan.domains.iter().enumerate() {
            clocks[i].push(Pulse::new(cursor, cursor + plan.pulse_width_ps));
            let second = cursor + d.functional_period_ps;
            clocks[i].push(Pulse::new(second, second + plan.pulse_width_ps));
            cursor = second + plan.pulse_width_ps + plan.d3_ps;
        }
        let last_capture_end = cursor - plan.d3_ps;
        let se_rise = last_capture_end + plan.d5_ps;
        se.transition_to(true, se_rise);

        CgbWaveforms {
            capture_clocks: clocks,
            scan_enable: se,
            end_ps: se_rise + plan.shift_period_ps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_domain_plan() -> CaptureTimingPlan {
        CaptureTimingPlan::with_domains(
            vec![
                DomainTimingPlan::from_mhz(DomainId::new(0), 250.0),
                DomainTimingPlan::from_mhz(DomainId::new(1), 250.0),
            ],
            4,
        )
    }

    #[test]
    fn mhz_conversion() {
        let d = DomainTimingPlan::from_mhz(DomainId::new(0), 250.0);
        assert_eq!(d.functional_period_ps, 4_000);
        let d = DomainTimingPlan::from_mhz(DomainId::new(1), 330.0);
        assert_eq!(d.functional_period_ps, 3_030);
    }

    #[test]
    fn each_domain_gets_shift_burst_plus_two_pulses() {
        let plan = two_domain_plan();
        let waves = ClockGatingBlock::generate(&plan);
        for train in &waves.capture_clocks {
            assert_eq!(train.len(), plan.shift_cycles + 2);
        }
    }

    #[test]
    fn capture_pairs_are_at_functional_period() {
        let plan = two_domain_plan();
        let waves = ClockGatingBlock::generate(&plan);
        for (d, train) in plan.domains.iter().zip(&waves.capture_clocks) {
            let rises = train.rise_times();
            let pair = &rises[plan.shift_cycles..];
            assert_eq!(pair[1] - pair[0], d.functional_period_ps);
        }
    }

    #[test]
    fn domains_are_staggered_by_d3() {
        let plan = two_domain_plan();
        let waves = ClockGatingBlock::generate(&plan);
        let r0 = waves.capture_clocks[0].rise_times();
        let r1 = waves.capture_clocks[1].rise_times();
        let c2_end = r0[plan.shift_cycles + 1] + plan.pulse_width_ps;
        let c3 = r1[plan.shift_cycles];
        assert_eq!(c3 - c2_end, plan.d3_ps);
    }

    #[test]
    fn verify_passes_with_small_skew_and_fails_with_large() {
        let plan = two_domain_plan();
        let ok_skew = SkewModel::uniform(2, plan.d3_ps / 2);
        assert!(plan.verify(&ok_skew).is_ok());
        let bad_skew = SkewModel::uniform(2, plan.d3_ps * 2);
        assert!(matches!(plan.verify(&bad_skew), Err(TimingViolation::CaptureGapTooSmall { .. })));
    }

    #[test]
    fn frequency_manipulation_detected() {
        // Generate waveforms for a manipulated test frequency (half speed,
        // the classic "run the whole chip from one slow test clock" hack),
        // then verify them against the TRUE functional periods: the
        // at-speed property must fail.
        let true_plan = two_domain_plan();
        let mut slow_plan = true_plan.clone();
        for d in &mut slow_plan.domains {
            d.functional_period_ps *= 2;
        }
        let manipulated_waves = ClockGatingBlock::generate(&slow_plan);
        assert!(matches!(
            true_plan.verify_waveforms(&manipulated_waves, &SkewModel::uniform(2, 100)),
            Err(TimingViolation::NotAtSpeed { .. })
        ));
        // The honest waveforms pass.
        assert!(true_plan.verify(&SkewModel::uniform(2, 100)).is_ok());
    }

    #[test]
    fn se_is_slow() {
        let mut plan = two_domain_plan();
        plan.d1_ps = 1_000_000; // "as long as desired"
        plan.d5_ps = 2_000_000;
        let waves = ClockGatingBlock::generate(&plan);
        assert!(waves.scan_enable.min_transition_spacing_ps().unwrap() >= 1_000_000);
        assert!(plan.verify(&SkewModel::uniform(2, 100)).is_ok());
    }

    #[test]
    fn mixed_frequencies_supported() {
        // Fig. 2's point: every domain keeps ITS OWN functional period.
        let plan = CaptureTimingPlan::with_domains(
            vec![
                DomainTimingPlan::from_mhz(DomainId::new(0), 250.0),
                DomainTimingPlan::from_mhz(DomainId::new(1), 330.0),
            ],
            2,
        );
        let waves = ClockGatingBlock::generate(&plan);
        let gap = |i: usize| {
            let r = waves.capture_clocks[i].rise_times();
            r[plan.shift_cycles + 1] - r[plan.shift_cycles]
        };
        assert_eq!(gap(0), 4_000);
        assert_eq!(gap(1), 3_030);
        assert!(plan.verify(&SkewModel::uniform(2, 1_000)).is_ok());
    }

    #[test]
    fn render_produces_one_row_per_signal() {
        let plan = two_domain_plan();
        let waves = ClockGatingBlock::generate(&plan);
        let chart = waves.render(waves.end_ps / 100);
        assert_eq!(chart.lines().count(), 3); // TCK1, TCK2, SE
    }
}
