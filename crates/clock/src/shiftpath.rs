//! Fig. 3: hold/setup timing of the PRPG → chain → MISR shift paths.
//!
//! During shift, each PRPG + scan chain + MISR must behave as one long
//! shift register — but the PRPG/MISR sit in the BIST clock domain while
//! the chain is clocked by the (gated) core clock, and the skew between
//! the two "is usually not aggressively managed". The paper's technique:
//! **keep the PRPG/MISR clock phase ahead of the chain clock**. Then
//!
//! * PRPG → chain-head can only fail *hold* (new data races in before the
//!   chain samples the old bit) — fixed by a retiming flip-flop on the
//!   opposite edge;
//! * chain-tail → MISR can only fail *setup* (data arrives after the
//!   early MISR edge) — avoided by removing logic (the space compactor)
//!   from that path.
//!
//! [`ShiftPathTiming::analyze`] computes both checks; `simulate_shift`
//! runs an actual bit stream through a behavioural model in which a hold
//! violation makes the chain head capture the *new* (raced-through) bit
//! and a setup violation makes the MISR capture the *stale* bit — so the
//! Fig. 3 bench can show signatures corrupting and being healed.

use std::fmt;

/// Physical parameters of one PRPG→chain→MISR shift path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShiftPathConfig {
    /// Shift clock period.
    pub shift_period_ps: u64,
    /// Flip-flop clock-to-Q delay.
    pub clk2q_ps: u64,
    /// Flip-flop setup requirement.
    pub setup_ps: u64,
    /// Flip-flop hold requirement.
    pub hold_ps: u64,
    /// Interconnect delay between the BIST logic and the chain boundary.
    pub wire_ps: u64,
    /// Delay per logic level (the space compactor inserts these between
    /// chain tail and MISR).
    pub level_delay_ps: u64,
    /// Logic levels between chain tail and MISR input (0 = paper's
    /// compactor-less configuration).
    pub compactor_levels: u32,
    /// How far the PRPG/MISR clock leads the chain clock. The paper's rule
    /// keeps this positive.
    pub phase_lead_ps: i64,
    /// Retiming flip-flop on the PRPG→chain boundary, clocked on the
    /// opposite edge (half a period later).
    pub retiming_ff: bool,
}

impl Default for ShiftPathConfig {
    fn default() -> Self {
        ShiftPathConfig {
            shift_period_ps: 40_000,
            clk2q_ps: 120,
            setup_ps: 80,
            hold_ps: 60,
            wire_ps: 100,
            level_delay_ps: 90,
            compactor_levels: 0,
            phase_lead_ps: 0,
            retiming_ff: false,
        }
    }
}

/// The outcome of the Fig. 3 analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShiftPathReport {
    /// Hold slack at the chain head (negative = violation).
    pub prpg_to_chain_hold_slack_ps: i64,
    /// Setup slack at the MISR (negative = violation).
    pub chain_to_misr_setup_slack_ps: i64,
}

impl ShiftPathReport {
    /// `true` when both checks pass.
    pub fn is_clean(&self) -> bool {
        self.prpg_to_chain_hold_slack_ps >= 0 && self.chain_to_misr_setup_slack_ps >= 0
    }
}

impl fmt::Display for ShiftPathReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hold slack {} ps, setup slack {} ps ({})",
            self.prpg_to_chain_hold_slack_ps,
            self.chain_to_misr_setup_slack_ps,
            if self.is_clean() { "clean" } else { "VIOLATED" }
        )
    }
}

/// Analyses and behaviourally simulates a shift path under skew.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShiftPathTiming {
    config: ShiftPathConfig,
}

impl ShiftPathTiming {
    /// Wraps a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the shift period is zero or smaller than the lead's
    /// magnitude.
    pub fn new(config: ShiftPathConfig) -> Self {
        assert!(config.shift_period_ps > 0);
        assert!(
            config.phase_lead_ps.unsigned_abs() < config.shift_period_ps,
            "phase lead must be a fraction of the shift period"
        );
        ShiftPathTiming { config }
    }

    /// The configuration under analysis.
    pub fn config(&self) -> &ShiftPathConfig {
        &self.config
    }

    /// Static timing of both boundary hops.
    ///
    /// With the PRPG/MISR clock `lead` ahead of the chain clock:
    ///
    /// * **Hold at chain head**: the PRPG launches at `-lead + clk2q` and
    ///   the new value must not arrive before the chain's hold window ends
    ///   at `+hold`. Slack = `(-lead + clk2q + wire) - hold`. A retiming
    ///   flip-flop re-launches on the opposite edge, adding half a period.
    /// * **Setup at MISR**: the chain tail launches at `0 + clk2q`, crosses
    ///   `compactor_levels` of XOR, and must arrive `setup` before the
    ///   MISR's next edge at `period - lead`. Slack =
    ///   `(period - lead - setup) - (clk2q + levels*delay + wire)`.
    ///
    /// Negative lead (chain clock ahead instead) flips the failure modes —
    /// which is exactly why the paper forbids it: the PRPG→chain hop would
    /// get *setup* violations that retiming cannot fix without slowing the
    /// shift clock.
    pub fn analyze(&self) -> ShiftPathReport {
        let c = &self.config;
        let launch_offset = if c.retiming_ff {
            // Opposite-edge retiming: launch half a period after the PRPG
            // edge, well clear of the chain's hold window.
            (c.shift_period_ps / 2) as i64
        } else {
            0
        };
        let arrival = -c.phase_lead_ps + launch_offset + (c.clk2q_ps + c.wire_ps) as i64;
        let hold_slack = arrival - c.hold_ps as i64;

        let path =
            (c.clk2q_ps + c.wire_ps) as i64 + (c.compactor_levels as u64 * c.level_delay_ps) as i64;
        let misr_edge = c.shift_period_ps as i64 - c.phase_lead_ps;
        let setup_slack = (misr_edge - c.setup_ps as i64) - path;

        ShiftPathReport {
            prpg_to_chain_hold_slack_ps: hold_slack,
            chain_to_misr_setup_slack_ps: setup_slack,
        }
    }

    /// Behavioural shift simulation: pushes `stream` through the
    /// PRPG→chain→MISR boundary model and returns the bits the MISR
    /// actually absorbs, with timing violations corrupting data:
    ///
    /// * **clean hold**: each cycle the chain head captures the PRPG's
    ///   *pre-edge* output (the bit launched one cycle earlier) — normal
    ///   shift-register behaviour;
    /// * **hold violation** → the freshly launched bit races through and
    ///   the head captures the *new* bit, skipping one stream position;
    /// * **retiming flip-flop** → the boundary transfers through an
    ///   opposite-edge stage that always meets hold, regardless of lead;
    /// * **setup violation at the MISR** → the MISR sees the *previous*
    ///   chain output (one cycle stale).
    ///
    /// With clean timing the output equals the input delayed by
    /// `chain_len + 1` cycles.
    pub fn simulate_shift(&self, stream: &[bool], chain_len: usize) -> Vec<bool> {
        let report = self.analyze();
        let hold_ok = report.prpg_to_chain_hold_slack_ps >= 0;
        let setup_ok = report.chain_to_misr_setup_slack_ps >= 0;
        let len = chain_len.max(1);
        let mut boundary_old = false; // PRPG output before this cycle's edge
        let mut retime_q = false; // retiming stage output (updates mid-cycle)
        let mut chain = vec![false; len];
        let mut last_tail = false;
        let mut out = Vec::with_capacity(stream.len());
        for &bit in stream {
            // Value at the chain head when its (lagging) clock edge samples.
            let head_in = if self.config.retiming_ff {
                // The retiming stage launched mid-previous-cycle: its value
                // is stable long before the edge and long after hold.
                retime_q
            } else if hold_ok {
                boundary_old
            } else {
                bit // race-through: the leading PRPG edge already changed it
            };
            let tail = chain[len - 1];
            for i in (1..len).rev() {
                chain[i] = chain[i - 1];
            }
            chain[0] = head_in;
            // MISR edge: clean setup absorbs this cycle's tail; a setup
            // violation still shows the previous one.
            out.push(if setup_ok { tail } else { last_tail });
            last_tail = tail;
            // Mid-cycle: the opposite-edge retiming stage captures the
            // PRPG's new output; by the next chain edge it is stable.
            retime_q = bit;
            boundary_old = bit;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ShiftPathConfig {
        ShiftPathConfig::default()
    }

    #[test]
    fn zero_lead_is_clean() {
        let t = ShiftPathTiming::new(base());
        let r = t.analyze();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn large_lead_causes_hold_violation_only() {
        let mut c = base();
        c.phase_lead_ps = 500; // PRPG well ahead
        let r = ShiftPathTiming::new(c).analyze();
        assert!(r.prpg_to_chain_hold_slack_ps < 0, "hold must fail: {r}");
        assert!(r.chain_to_misr_setup_slack_ps >= 0, "setup must still pass: {r}");
    }

    #[test]
    fn retiming_ff_fixes_the_hold_violation() {
        let mut c = base();
        c.phase_lead_ps = 500;
        c.retiming_ff = true;
        let r = ShiftPathTiming::new(c).analyze();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn compactor_levels_eat_setup_slack() {
        let mut c = base();
        c.phase_lead_ps = 500;
        c.retiming_ff = true;
        // A huge compactor: levels * delay approaches the period.
        c.compactor_levels = ((c.shift_period_ps / c.level_delay_ps) - 2) as u32;
        let r = ShiftPathTiming::new(c.clone()).analyze();
        assert!(r.chain_to_misr_setup_slack_ps < 0, "setup must fail: {r}");
        // Removing the compactor (the paper's configuration) heals it.
        c.compactor_levels = 0;
        let r = ShiftPathTiming::new(c).analyze();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn clean_simulation_is_a_pure_delay() {
        let t = ShiftPathTiming::new(base());
        let stream: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let out = t.simulate_shift(&stream, 4);
        // Output = input delayed by chain length + the boundary stage.
        for i in 5..stream.len() {
            assert_eq!(out[i], stream[i - 5], "position {i}");
        }
    }

    #[test]
    fn hold_violation_corrupts_the_stream() {
        let mut c = base();
        c.phase_lead_ps = 500;
        let t = ShiftPathTiming::new(c);
        let stream: Vec<bool> = (0..32).map(|i| (i / 2) % 2 == 0).collect();
        let out = t.simulate_shift(&stream, 4);
        let clean = ShiftPathTiming::new(base()).simulate_shift(&stream, 4);
        assert_ne!(out, clean, "a hold violation must corrupt the shifted data");
    }

    #[test]
    fn retimed_stream_is_clean_again() {
        let mut c = base();
        c.phase_lead_ps = 500;
        c.retiming_ff = true;
        let t = ShiftPathTiming::new(c);
        let stream: Vec<bool> = (0..32).map(|i| i % 5 < 2).collect();
        let out = t.simulate_shift(&stream, 4);
        // One extra delay stage from the retiming flop.
        for i in 5..stream.len() {
            assert_eq!(out[i], stream[i - 5], "position {i}");
        }
    }

    #[test]
    fn setup_violation_delays_misr_data() {
        let mut c = base();
        c.compactor_levels = ((c.shift_period_ps / c.level_delay_ps) + 5) as u32;
        // keep lead 0 so only setup fails
        let t = ShiftPathTiming::new(c);
        let r = t.analyze();
        assert!(r.prpg_to_chain_hold_slack_ps >= 0);
        assert!(r.chain_to_misr_setup_slack_ps < 0);
        let stream: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let out = t.simulate_shift(&stream, 2);
        let clean = ShiftPathTiming::new(base()).simulate_shift(&stream, 2);
        assert_ne!(out, clean);
    }

    #[test]
    #[should_panic(expected = "fraction of the shift period")]
    fn absurd_lead_rejected() {
        let mut c = base();
        c.phase_lead_ps = c.shift_period_ps as i64 + 1;
        ShiftPathTiming::new(c);
    }

    #[test]
    fn display_mentions_violation() {
        let mut c = base();
        c.phase_lead_ps = 500;
        let r = ShiftPathTiming::new(c).analyze();
        assert!(r.to_string().contains("VIOLATED"));
    }
}
