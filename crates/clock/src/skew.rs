//! Clock skew models.

use lbist_netlist::DomainId;

/// Per-domain clock arrival offsets.
///
/// Inter-related clock domains of an IP core have skews that "are usually
/// not aggressively managed" (§2.1) — the architecture must tolerate them
/// rather than fix them. The model is deliberately simple: each domain's
/// clock tree delivers edges `offset_ps[d]` late relative to an ideal
/// reference; the inter-domain skew between `a` and `b` is the absolute
/// offset difference.
///
/// # Example
///
/// ```
/// use lbist_clock::SkewModel;
/// use lbist_netlist::DomainId;
/// let skew = SkewModel::new(vec![0, 700, 350]);
/// assert_eq!(skew.between(DomainId::new(0), DomainId::new(1)), 700);
/// assert_eq!(skew.max_inter_domain_skew_ps(), 700);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkewModel {
    offset_ps: Vec<u64>,
}

impl SkewModel {
    /// Builds a model from per-domain arrival offsets (ps).
    ///
    /// # Panics
    ///
    /// Panics if no domain is given.
    pub fn new(offset_ps: Vec<u64>) -> Self {
        assert!(!offset_ps.is_empty(), "skew model needs at least one domain");
        SkewModel { offset_ps }
    }

    /// All domains share one worst-case pairwise skew: domain `d` arrives
    /// `d * skew_ps` late — adjacent domains differ by `skew_ps` and the
    /// extremes by `(n-1) * skew_ps`... for a *uniform pairwise* model we
    /// instead alternate 0/`skew_ps`, so every adjacent pair sees exactly
    /// `skew_ps`.
    pub fn uniform(domains: usize, skew_ps: u64) -> Self {
        assert!(domains > 0);
        SkewModel::new((0..domains).map(|d| if d % 2 == 0 { 0 } else { skew_ps }).collect())
    }

    /// The arrival offset of one domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain is out of range.
    pub fn offset_ps(&self, d: DomainId) -> u64 {
        self.offset_ps[d.index()]
    }

    /// Number of modelled domains.
    pub fn num_domains(&self) -> usize {
        self.offset_ps.len()
    }

    /// Skew between two domains.
    ///
    /// # Panics
    ///
    /// Panics if either domain is out of range.
    pub fn between(&self, a: DomainId, b: DomainId) -> u64 {
        self.offset_ps[a.index()].abs_diff(self.offset_ps[b.index()])
    }

    /// The worst pairwise skew — what `d3` must beat.
    pub fn max_inter_domain_skew_ps(&self) -> u64 {
        let max = self.offset_ps.iter().max().copied().unwrap_or(0);
        let min = self.offset_ps.iter().min().copied().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_skew_is_symmetric() {
        let s = SkewModel::new(vec![100, 400, 250]);
        let a = DomainId::new(0);
        let b = DomainId::new(1);
        assert_eq!(s.between(a, b), s.between(b, a));
        assert_eq!(s.between(a, b), 300);
    }

    #[test]
    fn uniform_alternates() {
        let s = SkewModel::uniform(4, 500);
        assert_eq!(s.max_inter_domain_skew_ps(), 500);
        assert_eq!(s.between(DomainId::new(0), DomainId::new(1)), 500);
        assert_eq!(s.between(DomainId::new(0), DomainId::new(2)), 0);
    }

    #[test]
    fn single_domain_has_no_skew() {
        let s = SkewModel::uniform(1, 999);
        assert_eq!(s.max_inter_domain_skew_ps(), 0);
    }
}
