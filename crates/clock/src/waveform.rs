//! Pulse trains and digital waveforms with ASCII rendering.

use std::fmt;

/// One clock pulse: rising and falling edge times in picoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pulse {
    /// Rising-edge time.
    pub rise_ps: u64,
    /// Falling-edge time.
    pub fall_ps: u64,
}

impl Pulse {
    /// Creates a pulse.
    ///
    /// # Panics
    ///
    /// Panics unless `rise_ps < fall_ps`.
    pub fn new(rise_ps: u64, fall_ps: u64) -> Self {
        assert!(rise_ps < fall_ps, "a pulse must rise before it falls");
        Pulse { rise_ps, fall_ps }
    }

    /// Pulse width.
    pub fn width_ps(&self) -> u64 {
        self.fall_ps - self.rise_ps
    }
}

/// A named train of non-overlapping pulses (a gated clock line).
///
/// # Example
///
/// ```
/// use lbist_clock::{Pulse, PulseTrain};
/// let mut t = PulseTrain::new("TCK1");
/// t.push(Pulse::new(0, 500));
/// t.push(Pulse::new(1000, 1500));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.rise_times()[1], 1000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PulseTrain {
    name: String,
    pulses: Vec<Pulse>,
}

impl PulseTrain {
    /// An empty train with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        PulseTrain { name: name.into(), pulses: Vec::new() }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a pulse.
    ///
    /// # Panics
    ///
    /// Panics if the pulse starts at or before the previous pulse's falling
    /// edge (pulses must be ordered and non-overlapping).
    pub fn push(&mut self, pulse: Pulse) {
        if let Some(last) = self.pulses.last() {
            assert!(pulse.rise_ps > last.fall_ps, "pulses must be ordered and disjoint");
        }
        self.pulses.push(pulse);
    }

    /// The pulses in time order.
    pub fn pulses(&self) -> &[Pulse] {
        &self.pulses
    }

    /// Number of pulses.
    pub fn len(&self) -> usize {
        self.pulses.len()
    }

    /// `true` if the train carries no pulses.
    pub fn is_empty(&self) -> bool {
        self.pulses.is_empty()
    }

    /// All rising-edge times.
    pub fn rise_times(&self) -> Vec<u64> {
        self.pulses.iter().map(|p| p.rise_ps).collect()
    }

    /// The line level at time `t` (high during a pulse).
    pub fn level_at(&self, t: u64) -> bool {
        self.pulses.iter().any(|p| p.rise_ps <= t && t < p.fall_ps)
    }

    /// Time of the last falling edge (0 for an empty train).
    pub fn end_ps(&self) -> u64 {
        self.pulses.last().map(|p| p.fall_ps).unwrap_or(0)
    }
}

/// A named level waveform (e.g. the scan-enable signal), as a list of
/// `(time, level)` transitions starting from an initial level.
///
/// # Example
///
/// ```
/// use lbist_clock::DigitalWave;
/// let mut se = DigitalWave::new("SE", true);
/// se.transition_to(false, 1_000);
/// se.transition_to(true, 9_000);
/// assert!(se.level_at(500));
/// assert!(!se.level_at(5_000));
/// assert!(se.level_at(9_500));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigitalWave {
    name: String,
    initial: bool,
    transitions: Vec<(u64, bool)>,
}

impl DigitalWave {
    /// A wave holding `initial` from time 0.
    pub fn new(name: impl Into<String>, initial: bool) -> Self {
        DigitalWave { name: name.into(), initial, transitions: Vec::new() }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a transition.
    ///
    /// # Panics
    ///
    /// Panics if transitions are not strictly time-ordered or the level
    /// does not actually change.
    pub fn transition_to(&mut self, level: bool, at_ps: u64) {
        let (last_t, last_l) = self.transitions.last().copied().unwrap_or((0, self.initial));
        assert!(at_ps > last_t || self.transitions.is_empty(), "transitions must be ordered");
        assert_ne!(level, last_l, "transition must change the level");
        self.transitions.push((at_ps, level));
    }

    /// The level at time `t`.
    pub fn level_at(&self, t: u64) -> bool {
        let mut level = self.initial;
        for &(at, l) in &self.transitions {
            if at <= t {
                level = l;
            } else {
                break;
            }
        }
        level
    }

    /// All transitions as `(time, new_level)`.
    pub fn transitions(&self) -> &[(u64, bool)] {
        &self.transitions
    }

    /// Minimum spacing between consecutive transitions — how "slow" the
    /// signal may be. The paper's SE claim is that this can be made
    /// arbitrarily large via `d1`/`d5`.
    pub fn min_transition_spacing_ps(&self) -> Option<u64> {
        self.transitions.windows(2).map(|w| w[1].0 - w[0].0).min()
    }
}

/// Renders a set of waveforms as an ASCII timing chart (one row per
/// signal), sampled at `resolution_ps` per character — the Fig. 2 view.
pub fn render_chart(
    trains: &[&PulseTrain],
    waves: &[&DigitalWave],
    until_ps: u64,
    resolution_ps: u64,
) -> String {
    render_chart_range(trains, waves, 0, until_ps, resolution_ps)
}

/// Like [`render_chart`] but over an explicit `[from_ps, until_ps]` window
/// — used to zoom into the capture window where the at-speed pulse pairs
/// live.
pub fn render_chart_range(
    trains: &[&PulseTrain],
    waves: &[&DigitalWave],
    from_ps: u64,
    until_ps: u64,
    resolution_ps: u64,
) -> String {
    assert!(resolution_ps > 0, "resolution must be positive");
    assert!(until_ps > from_ps, "empty render window");
    let cols = ((until_ps - from_ps) / resolution_ps + 1) as usize;
    let name_w = trains
        .iter()
        .map(|t| t.name().len())
        .chain(waves.iter().map(|w| w.name().len()))
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    let mut row = |name: &str, level: &dyn Fn(u64) -> bool| {
        out.push_str(&format!("{name:<name_w$} "));
        let mut prev = level(from_ps);
        for c in 0..cols {
            let t = from_ps + c as u64 * resolution_ps;
            let cur = level(t);
            out.push(match (prev, cur) {
                (false, false) => '_',
                (true, true) => '#',
                (false, true) => '/',
                (true, false) => '\\',
            });
            prev = cur;
        }
        out.push('\n');
    };
    for t in trains {
        row(t.name(), &|time| t.level_at(time));
    }
    for w in waves {
        row(w.name(), &|time| w.level_at(time));
    }
    out
}

impl fmt::Display for PulseTrain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} pulses", self.name, self.pulses.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_train_levels() {
        let mut t = PulseTrain::new("ck");
        t.push(Pulse::new(10, 20));
        t.push(Pulse::new(30, 40));
        assert!(!t.level_at(5));
        assert!(t.level_at(15));
        assert!(!t.level_at(25));
        assert!(t.level_at(30));
        assert!(!t.level_at(40));
        assert_eq!(t.end_ps(), 40);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_pulses_rejected() {
        let mut t = PulseTrain::new("ck");
        t.push(Pulse::new(10, 20));
        t.push(Pulse::new(20, 30));
    }

    #[test]
    #[should_panic(expected = "rise before")]
    fn inverted_pulse_rejected() {
        Pulse::new(20, 20);
    }

    #[test]
    fn wave_levels_and_spacing() {
        let mut se = DigitalWave::new("SE", true);
        se.transition_to(false, 100);
        se.transition_to(true, 700);
        assert_eq!(se.min_transition_spacing_ps(), Some(600));
        assert!(se.level_at(0));
        assert!(!se.level_at(100));
        assert!(se.level_at(700));
    }

    #[test]
    #[should_panic(expected = "change the level")]
    fn redundant_transition_rejected() {
        let mut se = DigitalWave::new("SE", true);
        se.transition_to(true, 100);
    }

    #[test]
    fn chart_renders_edges() {
        let mut t = PulseTrain::new("TCK1");
        t.push(Pulse::new(2, 4));
        let mut se = DigitalWave::new("SE", true);
        se.transition_to(false, 6);
        let chart = render_chart(&[&t], &[&se], 8, 1);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('/'));
        assert!(lines[0].contains('\\'));
        assert!(lines[1].contains('\\'));
    }
}
