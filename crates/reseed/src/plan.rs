//! Cube packing into seeds, seed schedules, and storage accounting.
//!
//! The stored-pattern top-up flow keeps one fully specified pattern per
//! ATPG cube — `scan cells` bits each. Hybrid BIST instead solves each
//! cube's care bits for an LFSR seed (degree bits per reseeded domain)
//! and lets the PRPG expand the seed back into a full load on chip. The
//! [`ReseedPlanner`] here packs as many compatible cubes as possible
//! into each seed (greedy first-fit over the incremental solver), falls
//! back to a stored pattern when a cube's care bits are outside the
//! seed space, and reports the storage ledger Table-1-style.

use crate::linmap::ScanLinearMap;
use crate::solver::Gf2Solver;
use lbist_atpg::{Pattern, TestCube};
use lbist_netlist::NodeId;
use lbist_sim::CompiledCircuit;
use lbist_tpg::Gf2Vec;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// One window of a hybrid-BIST session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeedWindow {
    /// `patterns` scan loads straight from the free-running PRPGs.
    Random {
        /// Number of pseudorandom loads in this window.
        patterns: usize,
    },
    /// Load the given per-domain seeds (`None` leaves that domain's PRPG
    /// free-running), then apply **one** scan load generated from them.
    Reseed {
        /// Per-domain seed states, architecture domain order.
        seeds: Vec<Option<Gf2Vec>>,
    },
}

/// The seed-scheduled session plan: pseudorandom windows interleaved
/// with reseed windows.
///
/// # Example
///
/// ```
/// use lbist_reseed::{SeedSchedule, SeedWindow};
/// use lbist_tpg::Gf2Vec;
///
/// let mut s = SeedSchedule::new();
/// s.push_random(64);
/// s.push_reseed(vec![Some(Gf2Vec::from_fn(19, |i| i == 0))]);
/// s.push_random(64);
/// assert_eq!(s.num_patterns(), 129); // 64 + 1 reseed load + 64
/// assert_eq!(s.num_seeds(), 1);
/// assert_eq!(s.seed_bits(), 19);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeedSchedule {
    windows: Vec<SeedWindow>,
}

impl SeedSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        SeedSchedule::default()
    }

    /// The windows in session order.
    pub fn windows(&self) -> &[SeedWindow] {
        &self.windows
    }

    /// Appends a pseudorandom window (no-op when `patterns` is 0).
    pub fn push_random(&mut self, patterns: usize) {
        if patterns > 0 {
            self.windows.push(SeedWindow::Random { patterns });
        }
    }

    /// Appends a reseed window.
    pub fn push_reseed(&mut self, seeds: Vec<Option<Gf2Vec>>) {
        self.windows.push(SeedWindow::Reseed { seeds });
    }

    /// Total scan loads the schedule applies (each reseed window applies
    /// exactly one).
    pub fn num_patterns(&self) -> usize {
        self.windows
            .iter()
            .map(|w| match w {
                SeedWindow::Random { patterns } => *patterns,
                SeedWindow::Reseed { .. } => 1,
            })
            .sum()
    }

    /// Number of reseed windows.
    pub fn num_seeds(&self) -> usize {
        self.windows.iter().filter(|w| matches!(w, SeedWindow::Reseed { .. })).count()
    }

    /// On-chip seed storage: the summed widths of every loaded seed.
    pub fn seed_bits(&self) -> usize {
        self.windows
            .iter()
            .map(|w| match w {
                SeedWindow::Random { .. } => 0,
                SeedWindow::Reseed { seeds } => {
                    seeds.iter().flatten().map(Gf2Vec::len).sum::<usize>()
                }
            })
            .sum()
    }
}

/// What became of one input cube.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CubeFate {
    /// Solved into seed group `group` (shared with every other cube of
    /// that group).
    Seeded {
        /// Index into [`ReseedPlan::seeds`].
        group: usize,
    },
    /// Outside the seed space (care bits exceed the LFSR span, or the
    /// system was inconsistent even alone): kept as stored pattern
    /// `index`.
    Stored {
        /// Index into [`ReseedPlan::stored`].
        index: usize,
    },
    /// Conflicts with a value the session holds on a non-scan input —
    /// unreachable by seeds *and* by stored patterns; dropped.
    Infeasible,
}

/// The storage ledger: seed bits vs stored-pattern bits vs the
/// all-stored baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageReport {
    /// Input cubes planned.
    pub cubes: usize,
    /// Cubes solved into seeds.
    pub seeded_cubes: usize,
    /// Seed groups (= reseed windows) emitted.
    pub seeds: usize,
    /// Total bits of loaded seed state.
    pub seed_bits: usize,
    /// Cubes kept as fully specified stored patterns.
    pub stored_patterns: usize,
    /// Bits of one fully specified pattern (= scan cells).
    pub bits_per_pattern: usize,
    /// `stored_patterns × bits_per_pattern`.
    pub stored_pattern_bits: usize,
    /// Cubes infeasible under the session's held input values.
    pub infeasible_cubes: usize,
    /// What the stored-pattern baseline would keep for the same cubes:
    /// `(cubes - infeasible) × bits_per_pattern`.
    pub baseline_bits: usize,
}

impl StorageReport {
    /// Total hybrid storage: seeds plus residual stored patterns.
    pub fn total_bits(&self) -> usize {
        self.seed_bits + self.stored_pattern_bits
    }

    /// Baseline bits over hybrid bits (∞-safe: 0 when nothing is stored
    /// either way).
    pub fn compression_ratio(&self) -> f64 {
        if self.total_bits() == 0 {
            return if self.baseline_bits == 0 { 1.0 } else { f64::INFINITY };
        }
        self.baseline_bits as f64 / self.total_bits() as f64
    }
}

/// The planner's output: seed groups, residual stored patterns, per-cube
/// dispositions and the storage ledger.
#[derive(Clone, Debug)]
pub struct ReseedPlan {
    /// Per-group per-domain seeds (architecture domain order; `None` =
    /// domain unconstrained by the group, left free-running).
    pub seeds: Vec<Vec<Option<Gf2Vec>>>,
    /// Residual fully specified patterns (cube care bits applied, scan
    /// don't-cares random-filled, non-scan inputs at their held values).
    pub stored: Vec<Pattern>,
    /// Disposition of each input cube, aligned with the planner input.
    pub fates: Vec<CubeFate>,
    /// The storage ledger.
    pub storage: StorageReport,
}

impl ReseedPlan {
    /// Builds a session schedule: the random budget split into
    /// `segments` equal windows with the seed groups dealt round-robin
    /// into the gaps between them (trailing groups after the last
    /// window). `segments == 1` puts every reseed window after the full
    /// random budget — the apples-to-apples layout the benchmark uses.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is 0.
    pub fn schedule(&self, random_patterns: usize, segments: usize) -> SeedSchedule {
        assert!(segments > 0, "a schedule needs at least one random segment");
        let mut schedule = SeedSchedule::new();
        let per_segment = random_patterns / segments;
        let groups_per_gap = self.seeds.len().div_ceil(segments);
        let mut next_group = 0usize;
        for s in 0..segments {
            let extra = if s == 0 { random_patterns - per_segment * segments } else { 0 };
            schedule.push_random(per_segment + extra);
            for _ in 0..groups_per_gap {
                if next_group < self.seeds.len() {
                    schedule.push_reseed(self.seeds[next_group].clone());
                    next_group += 1;
                }
            }
        }
        while next_group < self.seeds.len() {
            schedule.push_reseed(self.seeds[next_group].clone());
            next_group += 1;
        }
        schedule
    }
}

/// How [`ReseedPlanner::plan`] packs cubes into seed groups.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PackStrategy {
    /// One open group: a cube lands in it or (on conflict) in a fresh
    /// group that replaces it — earlier groups are never revisited.
    /// Fast, and the historical baseline the benchmark compares
    /// against.
    FirstFit,
    /// Every group stays open: a cube lands in the compatible group
    /// whose solvers it leaves with the **fewest free equations**
    /// (tightest fit; ties to the oldest group), opening a new group
    /// only when none is compatible. Costs one trial solve per open
    /// group per cube, and packs at least as tightly as first-fit on
    /// the bench cores (asserted by `bench_reseed`).
    #[default]
    BestFit,
}

/// Greedy cube-to-seed packer over a [`ScanLinearMap`].
///
/// # Example
///
/// ```no_run
/// use lbist_reseed::{ReseedPlanner, ScanLinearMap};
/// # fn demo(map: &ScanLinearMap, cc: &lbist_sim::CompiledCircuit,
/// #         test_mode: lbist_netlist::NodeId, cubes: &[lbist_atpg::TestCube]) {
/// let mut planner = ReseedPlanner::new(map);
/// planner.hold(test_mode, true);
/// let plan = planner.plan(cubes, cc, 0xB157);
/// println!("{} seeds + {} stored patterns", plan.seeds.len(), plan.stored.len());
/// # }
/// ```
#[derive(Debug)]
pub struct ReseedPlanner<'a> {
    map: &'a ScanLinearMap,
    /// Values the session holds on non-scan inputs (`test_mode`, bare
    /// pads): care bits on these nodes must match or the cube is
    /// infeasible.
    held: HashMap<NodeId, bool>,
    /// Pre-filled patterns aligned with the planner's input cubes: when
    /// set, a stored fallback reuses `fallback[i]` instead of re-filling
    /// cube `i`, keeping the residual store bit-identical to the
    /// all-stored baseline (apples-to-apples coverage comparison).
    fallback: Option<&'a [Pattern]>,
    /// Packing strategy (default [`PackStrategy::BestFit`]).
    strategy: PackStrategy,
}

enum CubeEquations {
    /// `(domain, row, value)` per solvable care bit.
    Solvable(Vec<(usize, Gf2Vec, bool)>),
    /// Care bit on a node outside both the seed space and the held set.
    OutsideSeedSpace,
    /// Care bit contradicts a held input value.
    Infeasible,
}

impl<'a> ReseedPlanner<'a> {
    /// A planner over the given seed→scan-state map.
    pub fn new(map: &'a ScanLinearMap) -> Self {
        ReseedPlanner {
            map,
            held: HashMap::new(),
            fallback: None,
            strategy: PackStrategy::default(),
        }
    }

    /// Selects the packing strategy (default [`PackStrategy::BestFit`]).
    pub fn set_strategy(&mut self, strategy: PackStrategy) -> &mut Self {
        self.strategy = strategy;
        self
    }

    /// Declares a non-scan input the session holds at a fixed value.
    pub fn hold(&mut self, node: NodeId, value: bool) -> &mut Self {
        self.held.insert(node, value);
        self
    }

    /// Supplies pre-filled patterns aligned with the input cubes (e.g.
    /// `TopUpReport::patterns` next to `TopUpReport::cubes`): stored
    /// fallbacks then reuse them verbatim instead of re-filling.
    pub fn use_fallback_patterns(&mut self, patterns: &'a [Pattern]) -> &mut Self {
        self.fallback = Some(patterns);
        self
    }

    fn equations_of(&self, cube: &TestCube) -> CubeEquations {
        let mut eqs = Vec::with_capacity(cube.specified());
        for &(node, value) in cube.assignments() {
            if let Some((domain, row)) = self.map.row_of(node) {
                eqs.push((domain, row.clone(), value));
            } else if let Some(&held) = self.held.get(&node) {
                if held != value {
                    return CubeEquations::Infeasible;
                }
            } else {
                return CubeEquations::OutsideSeedSpace;
            }
        }
        CubeEquations::Solvable(eqs)
    }

    /// Packs `cubes` into seed groups with stored-pattern fallback:
    /// best-fit by default (each cube into the compatible open group
    /// with the fewest free equations left), first-fit as the baseline
    /// strategy ([`ReseedPlanner::set_strategy`]). Deterministic in
    /// `entropy`, which drives the free-bit fill of solved seeds and
    /// the random fill of stored patterns.
    pub fn plan(&self, cubes: &[TestCube], cc: &CompiledCircuit, entropy: u64) -> ReseedPlan {
        if let Some(fallback) = self.fallback {
            assert_eq!(fallback.len(), cubes.len(), "fallback patterns align with cubes");
        }
        let mut rng = SmallRng::seed_from_u64(entropy ^ 0x5eed_5eed);
        let mut fates = Vec::with_capacity(cubes.len());
        let mut stored: Vec<Pattern> = Vec::new();
        let mut infeasible = 0usize;
        let mut seeded_cubes = 0usize;

        // Groups in creation order, each one lazily-grown solver per
        // domain. First-fit only ever revisits the newest group (and
        // not even that after a stored fallback — the historical
        // open/close behaviour); best-fit keeps every group open.
        let mut groups: Vec<Vec<Option<Gf2Solver>>> = Vec::new();
        let mut ff_open_is_fresh = true;

        for (idx, cube) in cubes.iter().enumerate() {
            let eqs = match self.equations_of(cube) {
                CubeEquations::Infeasible => {
                    infeasible += 1;
                    fates.push(CubeFate::Infeasible);
                    continue;
                }
                CubeEquations::OutsideSeedSpace => {
                    stored.push(self.stored_pattern(idx, cube, cc, &mut rng));
                    fates.push(CubeFate::Stored { index: stored.len() - 1 });
                    continue;
                }
                CubeEquations::Solvable(eqs) => eqs,
            };

            let mut placed: Option<usize> = match self.strategy {
                PackStrategy::FirstFit => groups
                    .len()
                    .checked_sub(1)
                    .filter(|_| !ff_open_is_fresh)
                    .filter(|&gi| try_add(self.map, &mut groups[gi], &eqs)),
                PackStrategy::BestFit => {
                    let mut best: Option<(usize, usize)> = None; // (free, group)
                    for (gi, group) in groups.iter_mut().enumerate() {
                        if let Some(free) = trial_free(self.map, group, &eqs) {
                            if best.is_none_or(|(bf, _)| free < bf) {
                                best = Some((free, gi));
                            }
                        }
                    }
                    best.map(|(_, gi)| {
                        let committed = try_add(self.map, &mut groups[gi], &eqs);
                        debug_assert!(committed, "a trialled fit must commit");
                        gi
                    })
                }
            };
            if placed.is_none() {
                // No open group fits: a fresh group, if the cube solves
                // alone at all.
                let mut fresh = vec![None; self.map.num_domains()];
                if try_add(self.map, &mut fresh, &eqs) {
                    groups.push(fresh);
                    placed = Some(groups.len() - 1);
                    ff_open_is_fresh = false;
                }
            }
            match placed {
                Some(gi) => {
                    seeded_cubes += 1;
                    fates.push(CubeFate::Seeded { group: gi });
                }
                None => {
                    stored.push(self.stored_pattern(idx, cube, cc, &mut rng));
                    fates.push(CubeFate::Stored { index: stored.len() - 1 });
                    // First-fit's historical contract: a conflict that
                    // fell through to storage leaves a *fresh* open
                    // slot, not the pre-conflict group.
                    ff_open_is_fresh = true;
                }
            }
        }

        // Solve every group into loadable seeds, in creation order (the
        // salt stream follows group order, keeping first-fit seeds
        // identical to the historical close-on-conflict packer).
        let mut salt = entropy | 1;
        let seeds: Vec<Vec<Option<Gf2Vec>>> = groups
            .iter()
            .map(|group| {
                group
                    .iter()
                    .enumerate()
                    .map(|(d, solver)| solver.as_ref().map(|s| solve_nonzero(s, d, &mut salt)))
                    .collect()
            })
            .collect();

        let bits_per_pattern = self.map.num_cells();
        let seed_bits: usize = seeds.iter().flat_map(|g| g.iter().flatten()).map(Gf2Vec::len).sum();
        let storage = StorageReport {
            cubes: cubes.len(),
            seeded_cubes,
            seeds: seeds.len(),
            seed_bits,
            stored_patterns: stored.len(),
            bits_per_pattern,
            stored_pattern_bits: stored.len() * bits_per_pattern,
            infeasible_cubes: infeasible,
            baseline_bits: (cubes.len() - infeasible) * bits_per_pattern,
        };
        ReseedPlan { seeds, stored, fates, storage }
    }

    /// A stored-pattern fallback: the cube's pre-filled pattern when one
    /// was supplied, otherwise the cube random-filled; either way every
    /// non-scan input is forced to its held session value.
    fn stored_pattern(
        &self,
        idx: usize,
        cube: &TestCube,
        cc: &CompiledCircuit,
        rng: &mut SmallRng,
    ) -> Pattern {
        let mut p = match self.fallback {
            Some(patterns) => patterns[idx].clone(),
            None => cube.fill(cc, rng),
        };
        for (i, &pi) in cc.inputs().iter().enumerate() {
            p.pi_values[i] =
                cube.value_of(pi).or_else(|| self.held.get(&pi).copied()).unwrap_or(false);
        }
        p
    }
}

/// Pre-add checkpoints of a group's solvers (`None` = the domain had
/// no solver yet and should revert to `None` on rollback).
type GroupMarks = Vec<Option<usize>>;

/// Asserts every equation of one cube into the group's solvers. On
/// success returns the pre-add checkpoints (so the caller can keep the
/// additions or undo them); on the first inconsistency rolls the whole
/// group back and returns `None`.
fn add_equations(
    map: &ScanLinearMap,
    group: &mut [Option<Gf2Solver>],
    eqs: &[(usize, Gf2Vec, bool)],
) -> Option<GroupMarks> {
    let marks: GroupMarks = group.iter().map(|s| s.as_ref().map(Gf2Solver::checkpoint)).collect();
    for &(domain, ref row, value) in eqs {
        let solver = group[domain].get_or_insert_with(|| Gf2Solver::new(map.degree(domain)));
        if solver.assert_eq(row.clone(), value).is_err() {
            rollback_group(group, &marks);
            return None;
        }
    }
    Some(marks)
}

/// Restores a group to its checkpointed state.
fn rollback_group(group: &mut [Option<Gf2Solver>], marks: &GroupMarks) {
    for (solver, mark) in group.iter_mut().zip(marks) {
        match (solver.as_mut(), mark) {
            (Some(s), Some(m)) => s.rollback(*m),
            (Some(_), None) => *solver = None,
            _ => {}
        }
    }
}

/// Tries to add every equation of one cube to the group's solvers,
/// rolling all of them back on the first inconsistency.
fn try_add(
    map: &ScanLinearMap,
    group: &mut [Option<Gf2Solver>],
    eqs: &[(usize, Gf2Vec, bool)],
) -> bool {
    add_equations(map, group, eqs).is_some()
}

/// Best-fit trial: adds every equation of one cube to the group's
/// solvers and reports how many free equations (unpinned seed
/// dimensions, summed over the group's instantiated domains) would
/// remain — then rolls the group back either way. `None` when the cube
/// conflicts with the group.
fn trial_free(
    map: &ScanLinearMap,
    group: &mut [Option<Gf2Solver>],
    eqs: &[(usize, Gf2Vec, bool)],
) -> Option<usize> {
    let marks = add_equations(map, group, eqs)?;
    let free = group.iter().flatten().map(|s| s.width() - s.rank()).sum();
    rollback_group(group, &marks);
    Some(free)
}

/// Solves one domain's system into a loadable (nonzero) seed.
fn solve_nonzero(solver: &Gf2Solver, domain: usize, salt: &mut u64) -> Gf2Vec {
    for _attempt in 0..64 {
        *salt = salt
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(29)
            .wrapping_add(domain as u64 | 1);
        let fill = *salt;
        let seed = solver.solve_with(|i| (fill >> (i % 64)) & 1 == 1);
        if !seed.is_zero() {
            return seed;
        }
        if solver.rank() == solver.width() {
            break; // fully determined and zero: only the stuck state fits
        }
    }
    // The all-zero state satisfies the system but cannot be loaded; force
    // one free variable high instead (rank < width guarantees one), or
    // give up on a fully determined zero seed — the caller's cubes then
    // demand the LFSR's stuck state, which no BIST session can apply.
    // With at least one care bit set to 1 this is unreachable; keep a
    // deterministic fallback rather than a panic for the degenerate
    // all-zero-care-bit case.
    let seed = solver.solve_with(|_| true);
    assert!(!seed.is_zero(), "only the all-zero seed satisfies this group");
    seed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linmap::DomainChannel;
    use lbist_dft::ScanChains;
    use lbist_netlist::{DomainId, GateKind, Netlist, NodeId};
    use lbist_tpg::{Lfsr, LfsrPoly, PhaseShifter, SpaceExpander};

    struct Fixture {
        cc: CompiledCircuit,
        map: ScanLinearMap,
        cells: Vec<NodeId>,
        test_mode: NodeId,
    }

    /// A scan-ready toy: `ffs` flip-flops in one domain, 3 chains, plus a
    /// `test_mode`-style held input.
    fn fixture(ffs: usize) -> Fixture {
        let mut nl = Netlist::new("plan");
        let tm = nl.add_input("test_mode");
        let a = nl.add_input("a");
        let mut prev = nl.add_gate(GateKind::And, &[a, tm]);
        let mut cells = Vec::new();
        for _ in 0..ffs {
            prev = nl.add_dff(prev, DomainId::new(0));
            cells.push(prev);
        }
        nl.add_output("y", prev);
        let chains = ScanChains::stitch(&nl, 3);
        let poly = LfsrPoly::maximal(11).unwrap();
        let lfsr = Lfsr::with_ones_seed(poly.clone());
        let shifter = PhaseShifter::synthesize(&poly, 3, 16);
        let expander = SpaceExpander::new(3, chains.chains().len());
        let map = ScanLinearMap::build(
            &[DomainChannel {
                lfsr: &lfsr,
                shifter: &shifter,
                expander: Some(&expander),
                chains: chains.chains(),
            }],
            chains.max_chain_length(),
        );
        let cc = CompiledCircuit::compile(&nl).unwrap();
        Fixture { cc, map, cells, test_mode: tm }
    }

    fn cube(bits: &[(NodeId, bool)]) -> TestCube {
        let mut c = TestCube::new();
        for &(n, v) in bits {
            c.assign(n, v);
        }
        c
    }

    #[test]
    fn solved_seeds_satisfy_every_care_bit() {
        let f = fixture(12);
        let cubes = vec![
            cube(&[(f.cells[0], true), (f.cells[5], false)]),
            cube(&[(f.cells[2], true), (f.cells[7], true)]),
            cube(&[(f.cells[11], false)]),
        ];
        let plan = ReseedPlanner::new(&f.map).plan(&cubes, &f.cc, 7);
        assert_eq!(plan.storage.seeded_cubes, 3);
        assert!(plan.storage.seeds >= 1);
        for (cube, fate) in cubes.iter().zip(&plan.fates) {
            let CubeFate::Seeded { group } = fate else { panic!("expected seeded, got {fate:?}") };
            let seeds = &plan.seeds[*group];
            for &(node, value) in cube.assignments() {
                assert_eq!(f.map.predict_cell(node, seeds), value, "care bit on {node}");
            }
        }
    }

    #[test]
    fn compatible_cubes_share_one_seed() {
        let f = fixture(12);
        // Disjoint care bits: all three must pack into one group (the
        // 11-bit seed space has room for 6 equations).
        let cubes = vec![
            cube(&[(f.cells[0], true), (f.cells[1], false)]),
            cube(&[(f.cells[4], true), (f.cells[5], true)]),
            cube(&[(f.cells[8], false), (f.cells[9], true)]),
        ];
        let plan = ReseedPlanner::new(&f.map).plan(&cubes, &f.cc, 3);
        assert_eq!(plan.storage.seeds, 1, "disjoint cubes share a seed");
        assert_eq!(plan.storage.seed_bits, 11);
        assert!(plan.storage.compression_ratio() > 1.0);
    }

    #[test]
    fn conflicting_cube_opens_a_new_group() {
        let f = fixture(12);
        let cubes = vec![
            cube(&[(f.cells[0], true)]),
            cube(&[(f.cells[0], false)]), // direct conflict with group 0
        ];
        let plan = ReseedPlanner::new(&f.map).plan(&cubes, &f.cc, 5);
        assert_eq!(plan.storage.seeds, 2);
        assert_eq!(plan.fates[0], CubeFate::Seeded { group: 0 });
        assert_eq!(plan.fates[1], CubeFate::Seeded { group: 1 });
        assert!(f.map.predict_cell(f.cells[0], &plan.seeds[0]));
        assert!(!f.map.predict_cell(f.cells[0], &plan.seeds[1]));
    }

    #[test]
    fn over_constrained_cube_falls_back_to_stored() {
        let f = fixture(16);
        // 16 care bits cannot all be independent in an 11-bit seed space;
        // whichever way the ranks fall, an inconsistent lone cube must be
        // stored, never mis-solved.
        let heavy =
            cube(&f.cells.iter().enumerate().map(|(i, &c)| (c, i % 2 == 0)).collect::<Vec<_>>());
        let plan = ReseedPlanner::new(&f.map).plan(std::slice::from_ref(&heavy), &f.cc, 9);
        match &plan.fates[0] {
            CubeFate::Seeded { group } => {
                // If it *did* solve, every care bit must hold.
                for &(node, value) in heavy.assignments() {
                    assert_eq!(f.map.predict_cell(node, &plan.seeds[*group]), value);
                }
            }
            CubeFate::Stored { index } => {
                assert_eq!(plan.storage.stored_patterns, 1);
                let p = &plan.stored[*index];
                // The stored pattern honours the care bits.
                for &(node, value) in heavy.assignments() {
                    let pos = f.cc.dffs().iter().position(|&n| n == node).unwrap();
                    assert_eq!(p.ff_values[pos], value);
                }
            }
            CubeFate::Infeasible => panic!("scan-cell cube cannot be infeasible"),
        }
    }

    /// Best-fit revisits earlier groups that first-fit has left behind:
    /// a cube conflicting with the newest group but compatible with an
    /// older one packs into the older group instead of opening a third.
    #[test]
    fn best_fit_revisits_older_groups() {
        let f = fixture(12);
        let cubes = vec![
            cube(&[(f.cells[0], true)]),
            cube(&[(f.cells[0], false)]), // conflicts group 0 -> group 1
            cube(&[(f.cells[0], true), (f.cells[4], true)]), // conflicts group 1, fits group 0
        ];
        let mut first_fit = ReseedPlanner::new(&f.map);
        first_fit.set_strategy(PackStrategy::FirstFit);
        let ff = first_fit.plan(&cubes, &f.cc, 7);
        assert_eq!(ff.storage.seeds, 3, "first-fit cannot reopen group 0");

        let bf = ReseedPlanner::new(&f.map).plan(&cubes, &f.cc, 7);
        assert_eq!(bf.storage.seeds, 2, "best-fit lands cube 3 back in group 0");
        assert_eq!(bf.fates[2], CubeFate::Seeded { group: 0 });
        assert!(bf.storage.seed_bits < ff.storage.seed_bits);
        // Both plans still honour every care bit.
        for plan in [&ff, &bf] {
            for (cube, fate) in cubes.iter().zip(&plan.fates) {
                let CubeFate::Seeded { group } = fate else { panic!("all seeded") };
                for &(node, value) in cube.assignments() {
                    assert_eq!(f.map.predict_cell(node, &plan.seeds[*group]), value);
                }
            }
        }
    }

    /// Among several compatible groups, best-fit picks the tightest
    /// (fewest free equations after the cube), not merely the first.
    #[test]
    fn best_fit_prefers_the_tightest_group() {
        let f = fixture(12);
        let cubes = vec![
            // Group 0: heavily constrained (4 equations).
            cube(&[
                (f.cells[0], true),
                (f.cells[1], false),
                (f.cells[2], true),
                (f.cells[3], false),
            ]),
            // Group 1 forced open by a conflict with group 0, lightly
            // constrained (1 equation).
            cube(&[(f.cells[0], false)]),
            // Compatible with both; the tight fit is group 0.
            cube(&[(f.cells[6], true)]),
        ];
        let plan = ReseedPlanner::new(&f.map).plan(&cubes, &f.cc, 5);
        assert_eq!(plan.storage.seeds, 2);
        assert_eq!(plan.fates[2], CubeFate::Seeded { group: 0 }, "tightest group wins");
    }

    #[test]
    fn held_inputs_gate_feasibility() {
        let f = fixture(8);
        let mut planner = ReseedPlanner::new(&f.map);
        planner.hold(f.test_mode, true);
        let cubes = vec![
            cube(&[(f.test_mode, true), (f.cells[1], true)]), // matches the hold
            cube(&[(f.test_mode, false), (f.cells[2], true)]), // contradicts it
        ];
        let plan = planner.plan(&cubes, &f.cc, 2);
        assert_eq!(plan.fates[0], CubeFate::Seeded { group: 0 });
        assert_eq!(plan.fates[1], CubeFate::Infeasible);
        assert_eq!(plan.storage.infeasible_cubes, 1);
        assert_eq!(plan.storage.baseline_bits, plan.storage.bits_per_pattern);
    }

    #[test]
    fn unknown_node_falls_back_to_stored() {
        let f = fixture(8);
        // A care bit on a bare input the planner was not told about.
        let a = f.cc.inputs()[1];
        let plan =
            ReseedPlanner::new(&f.map).plan(&[cube(&[(a, true), (f.cells[0], true)])], &f.cc, 4);
        assert!(matches!(plan.fates[0], CubeFate::Stored { .. }));
    }

    #[test]
    fn schedule_interleaves_random_and_reseed_windows() {
        let f = fixture(12);
        let cubes = vec![
            cube(&[(f.cells[0], true)]),
            cube(&[(f.cells[0], false)]),
            cube(&[(f.cells[1], true), (f.cells[0], true)]),
        ];
        let plan = ReseedPlanner::new(&f.map).plan(&cubes, &f.cc, 11);
        assert!(plan.seeds.len() >= 2);
        let sched = plan.schedule(100, 2);
        assert_eq!(sched.num_patterns(), 100 + plan.seeds.len());
        assert_eq!(sched.num_seeds(), plan.seeds.len());
        assert_eq!(sched.seed_bits(), plan.storage.seed_bits);
        // Interleaved: the first window is random, and some reseed window
        // precedes the final random window.
        assert!(matches!(sched.windows()[0], SeedWindow::Random { .. }));
        let last_random =
            sched.windows().iter().rposition(|w| matches!(w, SeedWindow::Random { .. })).unwrap();
        let first_reseed =
            sched.windows().iter().position(|w| matches!(w, SeedWindow::Reseed { .. })).unwrap();
        assert!(first_reseed < last_random, "reseed windows interleave the random budget");
        // Single-segment layout: all seeds after the full budget.
        let tail = plan.schedule(100, 1);
        assert!(matches!(tail.windows()[0], SeedWindow::Random { patterns: 100 }));
    }
}
