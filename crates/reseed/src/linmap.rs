//! The PRPG output-space linear map: which seed bits reach which cells.
//!
//! Everything between the LFSR seed and the scan cells is linear over
//! GF(2): `k` cycles of LFSR evolution multiply the state by `A^k` (the
//! transition matrix), a phase-shifter channel is an XOR-tap row, and a
//! space-expander chain is an XOR of channels. Composing them gives, for
//! every scan cell, one row vector `r` such that the cell's value after a
//! full scan load equals `r · s` for the seed `s` the load started from.
//! Those rows are the equation system a reseeding solver works over.

use lbist_dft::ScanChain;
use lbist_netlist::NodeId;
use lbist_tpg::{Gf2Vec, Lfsr, PhaseShifter, SpaceExpander};
use std::collections::HashMap;

/// One clock domain's TPG channel, borrowed from the architecture: the
/// LFSR (for its polynomial/transition matrix), the phase shifter, the
/// optional space expander, and the chains the channel feeds.
#[derive(Clone, Copy, Debug)]
pub struct DomainChannel<'a> {
    /// The domain's PRPG LFSR (only its polynomial matters here).
    pub lfsr: &'a Lfsr,
    /// Phase shifter between the LFSR and the chain inputs.
    pub shifter: &'a PhaseShifter,
    /// Space expander widening the shifter outputs, if fitted.
    pub expander: Option<&'a SpaceExpander>,
    /// The domain's scan chains, architecture order.
    pub chains: &'a [ScanChain],
}

/// Per-domain piece of the map.
#[derive(Clone, Debug)]
struct DomainMap {
    degree: usize,
    /// `(cell, row)`: the cell's post-load value is `row · seed`.
    cells: Vec<(NodeId, Gf2Vec)>,
}

/// The complete seed → scan-state linear map of a multi-domain BIST
/// architecture.
///
/// Built once per architecture; row lookup by cell [`NodeId`] is O(1).
///
/// # Example
///
/// ```
/// use lbist_netlist::{DomainId, Netlist};
/// use lbist_dft::ScanChains;
/// use lbist_reseed::{DomainChannel, ScanLinearMap};
/// use lbist_tpg::{Lfsr, LfsrPoly, PhaseShifter, SpaceExpander};
///
/// let mut nl = Netlist::new("m");
/// let a = nl.add_input("a");
/// let mut prev = a;
/// for _ in 0..6 {
///     prev = nl.add_dff(prev, DomainId::new(0));
/// }
/// nl.add_output("y", prev);
/// let chains = ScanChains::stitch(&nl, 2);
///
/// let poly = LfsrPoly::maximal(9).unwrap();
/// let lfsr = Lfsr::with_ones_seed(poly.clone());
/// let shifter = PhaseShifter::synthesize(&poly, 2, 16);
/// let channel = DomainChannel { lfsr: &lfsr, shifter: &shifter, expander: None,
///                               chains: chains.chains() };
/// let map = ScanLinearMap::build(&[channel], 3);
/// assert_eq!(map.num_cells(), 6);
/// assert_eq!(map.total_seed_bits(), 9);
/// ```
#[derive(Clone, Debug)]
pub struct ScanLinearMap {
    domains: Vec<DomainMap>,
    /// Cell node → (domain index, index into that domain's `cells`).
    position: HashMap<NodeId, (usize, usize)>,
    shift_cycles: usize,
}

impl ScanLinearMap {
    /// Builds the map for the given per-domain channels and the common
    /// scan load length (the architecture's `max_chain_length`), matching
    /// the session semantics: the bit inserted into a chain at shift
    /// cycle `t` comes to rest in cell `shift_cycles - 1 - t`.
    ///
    /// # Panics
    ///
    /// Panics if `shift_cycles` is 0, if a chain is longer than
    /// `shift_cycles`, or if a domain without an expander has more chains
    /// than shifter channels.
    pub fn build(channels: &[DomainChannel], shift_cycles: usize) -> Self {
        assert!(shift_cycles > 0, "a scan load shifts at least one cycle");
        let mut domains = Vec::with_capacity(channels.len());
        let mut position = HashMap::new();
        for (d, ch) in channels.iter().enumerate() {
            let degree = ch.lfsr.len();
            let a = ch.lfsr.transition_matrix();
            // One row per chain: the XOR of shifter tap rows that feeds
            // the chain (the expander combo, or the channel itself).
            let mut chain_rows: Vec<Gf2Vec> = ch
                .chains
                .iter()
                .enumerate()
                .map(|(c, chain)| {
                    assert!(
                        chain.len() <= shift_cycles,
                        "chain of {} cells cannot load in {shift_cycles} cycles",
                        chain.len()
                    );
                    match ch.expander {
                        Some(e) => {
                            let combo = e.combo(c);
                            let mut row = Gf2Vec::zeros(degree);
                            for channel in 0..e.num_channels() {
                                if combo.get(channel) {
                                    row.xor_assign(ch.shifter.taps(channel));
                                }
                            }
                            row
                        }
                        None => {
                            assert!(
                                c < ch.shifter.num_channels(),
                                "chain {c} has no shifter channel and no expander"
                            );
                            ch.shifter.taps(c).clone()
                        }
                    }
                })
                .collect();

            let mut cells = Vec::new();
            for t in 0..shift_cycles {
                let cell_pos = shift_cycles - 1 - t;
                for (c, chain) in ch.chains.iter().enumerate() {
                    if let Some(&cell) = chain.cells.get(cell_pos) {
                        cells.push((cell, chain_rows[c].clone()));
                    }
                }
                // Advance every chain row one cycle: row ← rowᵀ·A, i.e.
                // the XOR of A's rows selected by the current row's bits.
                if t + 1 < shift_cycles {
                    for row in chain_rows.iter_mut() {
                        let mut next = Gf2Vec::zeros(degree);
                        for i in 0..degree {
                            if row.get(i) {
                                next.xor_assign(a.row(i));
                            }
                        }
                        *row = next;
                    }
                }
            }
            for (i, &(cell, _)) in cells.iter().enumerate() {
                let clash = position.insert(cell, (d, i));
                assert!(clash.is_none(), "cell {cell} stitched into two chains");
            }
            domains.push(DomainMap { degree, cells });
        }
        ScanLinearMap { domains, position, shift_cycles }
    }

    /// Number of clock domains mapped.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Seed width (LFSR degree) of one domain.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range.
    pub fn degree(&self, domain: usize) -> usize {
        self.domains[domain].degree
    }

    /// Total seed storage for one full reseed (all domains), in bits.
    pub fn total_seed_bits(&self) -> usize {
        self.domains.iter().map(|d| d.degree).sum()
    }

    /// Total scan cells mapped — the storage cost, in bits, of one fully
    /// specified stored pattern.
    pub fn num_cells(&self) -> usize {
        self.domains.iter().map(|d| d.cells.len()).sum()
    }

    /// The scan-load length the map was built for.
    pub fn shift_cycles(&self) -> usize {
        self.shift_cycles
    }

    /// The seed-space row of a scan cell: `Some((domain, row))` with the
    /// cell's post-load value equal to `row · seed(domain)`, or `None` if
    /// the node is not a mapped scan cell.
    pub fn row_of(&self, cell: NodeId) -> Option<(usize, &Gf2Vec)> {
        let &(d, i) = self.position.get(&cell)?;
        Some((d, &self.domains[d].cells[i].1))
    }

    /// Predicts one cell's post-load value for the given per-domain seeds
    /// (`None` entries fall back to... nothing — the caller must supply a
    /// seed for the cell's domain).
    ///
    /// # Panics
    ///
    /// Panics if the cell is unmapped, the domain's seed is absent, or
    /// the seed width mismatches.
    pub fn predict_cell(&self, cell: NodeId, seeds: &[Option<Gf2Vec>]) -> bool {
        let (d, row) = self.row_of(cell).expect("cell must be a mapped scan cell");
        let seed = seeds[d].as_ref().expect("the cell's domain needs a seed");
        row.dot(seed)
    }

    /// Predicts the whole scan state for fully specified per-domain
    /// seeds, as `(cell, value)` pairs in load order.
    ///
    /// # Panics
    ///
    /// Panics if `seeds.len() != num_domains()` or widths mismatch.
    pub fn predict_scan_state(&self, seeds: &[Gf2Vec]) -> Vec<(NodeId, bool)> {
        assert_eq!(seeds.len(), self.domains.len(), "one seed per domain");
        let mut out = Vec::with_capacity(self.num_cells());
        for (dm, seed) in self.domains.iter().zip(seeds) {
            for (cell, row) in &dm.cells {
                out.push((*cell, row.dot(seed)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbist_dft::ScanChains;
    use lbist_netlist::{DomainId, Netlist};
    use lbist_tpg::{LfsrPoly, Prpg};

    /// Builds a netlist whose FFs split across `domains` clock domains.
    fn ff_netlist(ffs: usize, domains: u16) -> Netlist {
        let mut nl = Netlist::new("cells");
        let a = nl.add_input("a");
        let mut prev = a;
        for i in 0..ffs {
            prev = nl.add_dff(prev, DomainId::new(i as u16 % domains));
        }
        nl.add_output("y", prev);
        nl
    }

    /// Reference: run the real Prpg scalar pipeline for one load and shift
    /// the bits into per-chain cell states.
    fn reference_scan_state(
        prpg: &mut Prpg,
        chains: &[ScanChain],
        shift_cycles: usize,
    ) -> HashMap<NodeId, bool> {
        let mut state: HashMap<NodeId, bool> = HashMap::new();
        for t in 0..shift_cycles {
            let bits = prpg.step_vector();
            let cell_pos = shift_cycles - 1 - t;
            for (c, chain) in chains.iter().enumerate() {
                if let Some(&cell) = chain.cells.get(cell_pos) {
                    state.insert(cell, bits[c]);
                }
            }
        }
        state
    }

    #[test]
    fn rows_predict_the_real_prpg_pipeline() {
        let nl = ff_netlist(23, 1);
        let chains = ScanChains::stitch(&nl, 4);
        let poly = LfsrPoly::maximal(13).unwrap();
        let shifter = PhaseShifter::synthesize(&poly, 3, 32);
        let expander = SpaceExpander::new(3, 4);
        let shift_cycles = chains.max_chain_length();

        for seed_word in [1u64, 0x5a5a, 0x1234_5678] {
            let seed = Gf2Vec::from_fn(13, |i| (seed_word >> i) & 1 == 1 || i == 0);
            let lfsr = Lfsr::new(poly.clone(), seed.clone());
            let map = ScanLinearMap::build(
                &[DomainChannel {
                    lfsr: &lfsr,
                    shifter: &shifter,
                    expander: Some(&expander),
                    chains: chains.chains(),
                }],
                shift_cycles,
            );
            let mut prpg = Prpg::with_expander(
                Lfsr::new(poly.clone(), seed.clone()),
                shifter.clone(),
                expander.clone(),
            );
            let reference = reference_scan_state(&mut prpg, chains.chains(), shift_cycles);
            let predicted = map.predict_scan_state(&[seed]);
            assert_eq!(predicted.len(), reference.len());
            for (cell, value) in predicted {
                assert_eq!(value, reference[&cell], "cell {cell} (seed {seed_word:#x})");
            }
        }
    }

    #[test]
    fn no_expander_taps_channels_directly() {
        let nl = ff_netlist(9, 1);
        let chains = ScanChains::stitch(&nl, 3);
        let poly = LfsrPoly::maximal(9).unwrap();
        let shifter = PhaseShifter::synthesize(&poly, 3, 8);
        let shift_cycles = chains.max_chain_length();
        let lfsr = Lfsr::with_ones_seed(poly.clone());
        let map = ScanLinearMap::build(
            &[DomainChannel {
                lfsr: &lfsr,
                shifter: &shifter,
                expander: None,
                chains: chains.chains(),
            }],
            shift_cycles,
        );
        let mut prpg = Prpg::new(Lfsr::with_ones_seed(poly), shifter);
        let reference = reference_scan_state(&mut prpg, chains.chains(), shift_cycles);
        for (cell, value) in map.predict_scan_state(&[lfsr.state().clone()]) {
            assert_eq!(value, reference[&cell], "cell {cell}");
        }
    }

    #[test]
    fn multi_domain_rows_are_independent() {
        let nl = ff_netlist(12, 2);
        let chains = ScanChains::stitch(&nl, 2);
        let poly = LfsrPoly::maximal(11).unwrap();
        let shifter = PhaseShifter::synthesize(&poly, 2, 16);
        let lfsr_a = Lfsr::with_ones_seed(poly.clone());
        let seed_b = Gf2Vec::from_fn(11, |i| i % 3 == 0);
        let lfsr_b = Lfsr::new(poly.clone(), seed_b.clone());
        let dom0: Vec<ScanChain> =
            chains.chains().iter().filter(|c| c.domain == DomainId::new(0)).cloned().collect();
        let dom1: Vec<ScanChain> =
            chains.chains().iter().filter(|c| c.domain == DomainId::new(1)).cloned().collect();
        let shift_cycles = chains.max_chain_length();
        let map = ScanLinearMap::build(
            &[
                DomainChannel { lfsr: &lfsr_a, shifter: &shifter, expander: None, chains: &dom0 },
                DomainChannel { lfsr: &lfsr_b, shifter: &shifter, expander: None, chains: &dom1 },
            ],
            shift_cycles,
        );
        assert_eq!(map.num_domains(), 2);
        assert_eq!(map.total_seed_bits(), 22);
        assert_eq!(map.num_cells(), 12);
        // Each domain's prediction matches its own scalar pipeline.
        let mut prpg0 = Prpg::new(Lfsr::with_ones_seed(poly.clone()), shifter.clone());
        let ref0 = reference_scan_state(&mut prpg0, &dom0, shift_cycles);
        let mut prpg1 = Prpg::new(Lfsr::new(poly, seed_b.clone()), shifter);
        let ref1 = reference_scan_state(&mut prpg1, &dom1, shift_cycles);
        for (cell, value) in map.predict_scan_state(&[lfsr_a.state().clone(), seed_b]) {
            let expect = ref0.get(&cell).or_else(|| ref1.get(&cell)).expect("cell mapped");
            assert_eq!(value, *expect, "cell {cell}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_shift_cycles_rejected() {
        ScanLinearMap::build(&[], 0);
    }
}
