//! Incremental GF(2) Gaussian elimination with rollback.
//!
//! The seed solver accumulates care-bit equations `row · seed = value`
//! one cube at a time. Insertion keeps the stored rows in echelon form
//! (every row owns a distinct pivot column and was reduced by all rows
//! inserted before it) **without ever mutating earlier rows**, so a
//! failed cube merge can be undone by truncation — the cheap rollback
//! cube packing needs. Full Gauss–Jordan reduction happens only once, at
//! [`Gf2Solver::solve_with`] time, on a copy.

use lbist_tpg::Gf2Vec;
use std::fmt;

/// The equation system has no solution: some accumulated combination
/// reduces to `0 = 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Inconsistent;

impl fmt::Display for Inconsistent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GF(2) system is inconsistent (reduces to 0 = 1)")
    }
}

impl std::error::Error for Inconsistent {}

#[derive(Clone, Debug)]
struct Row {
    coeffs: Gf2Vec,
    rhs: bool,
    pivot: usize,
}

/// An incremental GF(2) linear system over a fixed variable width.
///
/// # Example
///
/// ```
/// use lbist_reseed::Gf2Solver;
/// use lbist_tpg::Gf2Vec;
///
/// let mut s = Gf2Solver::new(3);
/// // x0 ^ x1 = 1, x1 = 1  =>  x0 = 0.
/// s.assert_eq(Gf2Vec::from_bools(&[true, true, false]), true).unwrap();
/// s.assert_eq(Gf2Vec::from_bools(&[false, true, false]), true).unwrap();
/// let x = s.solve_with(|_| false);
/// assert!(!x.get(0));
/// assert!(x.get(1));
/// ```
#[derive(Clone, Debug)]
pub struct Gf2Solver {
    width: usize,
    rows: Vec<Row>,
}

impl Gf2Solver {
    /// An empty system over `width` variables.
    pub fn new(width: usize) -> Self {
        Gf2Solver { width, rows: Vec::new() }
    }

    /// Variable count.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Rank of the accumulated system (= stored rows).
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no equation constrains the system yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds the equation `coeffs · x = rhs`.
    ///
    /// Returns `Ok(true)` when the equation added a new pivot, `Ok(false)`
    /// when it was linearly implied by the system already, and
    /// [`Inconsistent`] when it contradicts it (in which case the system
    /// is left unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != width()`.
    pub fn assert_eq(&mut self, mut coeffs: Gf2Vec, mut rhs: bool) -> Result<bool, Inconsistent> {
        assert_eq!(coeffs.len(), self.width, "equation width mismatch");
        for row in &self.rows {
            if coeffs.get(row.pivot) {
                coeffs.xor_assign(&row.coeffs);
                rhs ^= row.rhs;
            }
        }
        if coeffs.is_zero() {
            return if rhs { Err(Inconsistent) } else { Ok(false) };
        }
        let pivot = (0..self.width).find(|&i| coeffs.get(i)).expect("nonzero row has a pivot");
        self.rows.push(Row { coeffs, rhs, pivot });
        Ok(true)
    }

    /// A rollback mark for the current state; pass to
    /// [`Gf2Solver::rollback`] to discard every equation added since.
    pub fn checkpoint(&self) -> usize {
        self.rows.len()
    }

    /// Discards equations added after `mark` (insertion never mutates
    /// earlier rows, so truncation restores the exact earlier state).
    ///
    /// # Panics
    ///
    /// Panics if `mark` exceeds the current rank.
    pub fn rollback(&mut self, mark: usize) {
        assert!(mark <= self.rows.len(), "rollback mark from a later state");
        self.rows.truncate(mark);
    }

    /// Solves the system, filling each free (unconstrained) variable from
    /// `free(index)`. The returned assignment satisfies every accumulated
    /// equation.
    pub fn solve_with(&self, mut free: impl FnMut(usize) -> bool) -> Gf2Vec {
        // Gauss–Jordan on a copy: after pass `i`, no other row contains
        // row i's pivot, and later passes can't reintroduce it.
        let mut rows = self.rows.clone();
        for i in 0..rows.len() {
            let (pivot, coeffs, rhs) = (rows[i].pivot, rows[i].coeffs.clone(), rows[i].rhs);
            for (j, row) in rows.iter_mut().enumerate() {
                if j != i && row.coeffs.get(pivot) {
                    row.coeffs.xor_assign(&coeffs);
                    row.rhs ^= rhs;
                }
            }
        }
        let mut is_pivot = vec![false; self.width];
        for row in &rows {
            is_pivot[row.pivot] = true;
        }
        let mut x = Gf2Vec::zeros(self.width);
        for (i, &p) in is_pivot.iter().enumerate() {
            if !p {
                x.set(i, free(i));
            }
        }
        for row in &rows {
            // After Jordan reduction every non-pivot coefficient is a free
            // column, already assigned in `x`.
            let mut v = row.rhs;
            for j in 0..self.width {
                if j != row.pivot && row.coeffs.get(j) && x.get(j) {
                    v = !v;
                }
            }
            x.set(row.pivot, v);
        }
        x
    }

    /// Checks an assignment against every accumulated equation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != width()`.
    pub fn satisfied_by(&self, x: &Gf2Vec) -> bool {
        self.rows.iter().all(|row| row.coeffs.dot(x) == row.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(bits: &[usize], width: usize) -> Gf2Vec {
        let mut v = Gf2Vec::zeros(width);
        for &b in bits {
            v.set(b, true);
        }
        v
    }

    #[test]
    fn solves_and_satisfies() {
        let w = 8;
        let mut s = Gf2Solver::new(w);
        assert_eq!(s.assert_eq(vec_of(&[0, 2, 5], w), true), Ok(true));
        assert_eq!(s.assert_eq(vec_of(&[2], w), false), Ok(true));
        assert_eq!(s.assert_eq(vec_of(&[5, 7], w), true), Ok(true));
        for fill in [0u64, !0, 0xA5] {
            let x = s.solve_with(|i| (fill >> i) & 1 == 1);
            assert!(s.satisfied_by(&x), "fill {fill:#x}");
        }
    }

    #[test]
    fn redundant_equation_adds_no_rank() {
        let w = 4;
        let mut s = Gf2Solver::new(w);
        s.assert_eq(vec_of(&[0, 1], w), true).unwrap();
        s.assert_eq(vec_of(&[1, 2], w), false).unwrap();
        // (0,1)+(1,2) = (0,2) with rhs 1: implied.
        assert_eq!(s.assert_eq(vec_of(&[0, 2], w), true), Ok(false));
        assert_eq!(s.rank(), 2);
    }

    #[test]
    fn contradiction_is_reported_and_state_preserved() {
        let w = 4;
        let mut s = Gf2Solver::new(w);
        s.assert_eq(vec_of(&[0, 1], w), true).unwrap();
        s.assert_eq(vec_of(&[1, 2], w), false).unwrap();
        assert_eq!(s.assert_eq(vec_of(&[0, 2], w), false), Err(Inconsistent));
        assert_eq!(s.rank(), 2, "failed insert must not grow the system");
        let x = s.solve_with(|_| true);
        assert!(s.satisfied_by(&x));
    }

    #[test]
    fn rollback_restores_solvability() {
        let w = 6;
        let mut s = Gf2Solver::new(w);
        s.assert_eq(vec_of(&[0], w), true).unwrap();
        let mark = s.checkpoint();
        s.assert_eq(vec_of(&[1], w), true).unwrap();
        s.assert_eq(vec_of(&[2, 3], w), false).unwrap();
        s.rollback(mark);
        assert_eq!(s.rank(), 1);
        // x1 = 0 is now free again: a conflicting equation must fit.
        assert_eq!(s.assert_eq(vec_of(&[1], w), false), Ok(true));
        let x = s.solve_with(|_| false);
        assert!(x.get(0));
        assert!(!x.get(1));
    }

    #[test]
    fn full_rank_pins_every_variable() {
        let w = 5;
        let mut s = Gf2Solver::new(w);
        for i in 0..w {
            // x_i ^ x_{i+1..} triangular system.
            let cols: Vec<usize> = (i..w).collect();
            s.assert_eq(vec_of(&cols, w), i % 2 == 0).unwrap();
        }
        assert_eq!(s.rank(), w);
        let a = s.solve_with(|_| false);
        let b = s.solve_with(|_| true);
        assert_eq!(a, b, "no free variables left");
        assert!(s.satisfied_by(&a));
    }

    /// Exhaustive cross-check on a small width: whenever `assert_eq`
    /// accepts a random system, some assignment satisfies it, and whenever
    /// it reports [`Inconsistent`], brute force agrees no assignment does.
    #[test]
    fn verdicts_match_brute_force() {
        let w = 6;
        let mut rng = 0x9E37_79B9u64;
        let mut step = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 33
        };
        for _case in 0..200 {
            let mut s = Gf2Solver::new(w);
            let mut eqs: Vec<(u64, bool)> = Vec::new();
            let mut consistent = true;
            for _ in 0..8 {
                let coeffs = step() & ((1 << w) - 1);
                let rhs = step() & 1 == 1;
                let accepted =
                    s.assert_eq(Gf2Vec::from_fn(w, |i| (coeffs >> i) & 1 == 1), rhs).is_ok();
                if accepted {
                    eqs.push((coeffs, rhs));
                } else {
                    consistent = false;
                    break;
                }
            }
            let brute = (0u64..1 << w)
                .any(|x| eqs.iter().all(|&(c, r)| ((c & x).count_ones() % 2 == 1) == r));
            if consistent {
                let sol = s.solve_with(|i| (step() >> i) & 1 == 1);
                assert!(s.satisfied_by(&sol));
                assert!(brute, "solver accepted an unsatisfiable system");
            } else {
                // The rejected equation together with the accepted prefix
                // must truly be unsatisfiable — checked by construction:
                // the prefix alone stays satisfiable.
                assert!(brute, "accepted prefix must remain satisfiable");
            }
        }
    }
}
