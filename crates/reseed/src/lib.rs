//! Hybrid-BIST reseeding: stored LFSR seeds instead of stored patterns.
//!
//! The paper's top-up flow (Table 1, "# of Top-Up Patterns") keeps one
//! fully specified pattern per random-resistant fault cluster — `scan
//! cells` bits of on-chip/tester storage each. Hybrid BIST exploits that
//! a test cube is mostly don't-care: everything between the PRPG seed
//! and the scan cells is *linear over GF(2)*, so a cube's few care bits
//! are a small linear system in the seed, and the seed (LFSR-degree
//! bits, e.g. 19) replaces the whole pattern. The PRPG expands it back
//! on chip through the very shift plumbing the random phase already
//! uses; the paper's Boundary-Scan seed-load path (`LBIST_SEED`) is the
//! delivery mechanism.
//!
//! The pieces:
//!
//! * [`ScanLinearMap`] — composes LFSR transition-matrix powers with the
//!   phase-shifter tap rows and space-expander combos into one GF(2) row
//!   per scan cell: `cell = row · seed`.
//! * [`Gf2Solver`] — incremental Gaussian elimination with checkpoint/
//!   rollback, so cube packing can *try* a merge and back out.
//! * [`ReseedPlanner`] — greedy first-fit packing of test cubes into
//!   seed groups, with stored-pattern fallback for cubes outside the
//!   seed space and an infeasibility check against held input values.
//! * [`SeedSchedule`]/[`SeedWindow`] — the session plan: pseudorandom
//!   windows interleaved with reseed windows, consumed by
//!   `lbist_core::SelfTestSession` and by the `bench_reseed` grader.
//! * [`StorageReport`] — the ledger: seed bits + residual pattern bits
//!   vs the all-stored baseline.
//!
//! # Example: solve one cube into a seed
//!
//! ```
//! use lbist_dft::ScanChains;
//! use lbist_netlist::{DomainId, Netlist};
//! use lbist_reseed::{CubeFate, DomainChannel, ReseedPlanner, ScanLinearMap};
//! use lbist_sim::CompiledCircuit;
//! use lbist_tpg::{Lfsr, LfsrPoly, PhaseShifter};
//!
//! // Ten flip-flops in two chains, fed by a 9-bit PRPG.
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let mut prev = a;
//! let mut cells = Vec::new();
//! for _ in 0..10 {
//!     prev = nl.add_dff(prev, DomainId::new(0));
//!     cells.push(prev);
//! }
//! nl.add_output("y", prev);
//! let chains = ScanChains::stitch(&nl, 2);
//! let poly = LfsrPoly::maximal(9).unwrap();
//! let lfsr = Lfsr::with_ones_seed(poly.clone());
//! let shifter = PhaseShifter::synthesize(&poly, 2, 32);
//! let map = ScanLinearMap::build(
//!     &[DomainChannel { lfsr: &lfsr, shifter: &shifter, expander: None,
//!                       chains: chains.chains() }],
//!     chains.max_chain_length(),
//! );
//!
//! // A cube demanding cells[0] = 1 and cells[7] = 0.
//! let mut cube = lbist_atpg::TestCube::new();
//! cube.assign(cells[0], true);
//! cube.assign(cells[7], false);
//!
//! let cc = CompiledCircuit::compile(&nl).unwrap();
//! let plan = ReseedPlanner::new(&map).plan(&[cube], &cc, 1);
//! assert!(matches!(plan.fates[0], CubeFate::Seeded { .. }));
//! assert!(map.predict_cell(cells[0], &plan.seeds[0]));
//! assert!(!map.predict_cell(cells[7], &plan.seeds[0]));
//! assert_eq!(plan.storage.seed_bits, 9); // vs 10 pattern bits stored
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod linmap;
mod plan;
mod solver;

pub use linmap::{DomainChannel, ScanLinearMap};
pub use plan::{
    CubeFate, PackStrategy, ReseedPlan, ReseedPlanner, SeedSchedule, SeedWindow, StorageReport,
};
pub use solver::{Gf2Solver, Inconsistent};
