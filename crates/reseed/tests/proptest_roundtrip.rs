//! Property tests: GF(2) seed solving round-trips through the real PRPG
//! pipeline, and unsolvable cubes are reported, never mis-solved.

use lbist_atpg::TestCube;
use lbist_dft::ScanChains;
use lbist_netlist::{DomainId, Netlist, NodeId};
use lbist_reseed::{CubeFate, DomainChannel, ReseedPlanner, ScanLinearMap};
use lbist_sim::CompiledCircuit;
use lbist_tpg::{Gf2Vec, Lfsr, LfsrPoly, PhaseShifter, Prpg, SpaceExpander};
use proptest::prelude::*;
use std::collections::HashMap;

/// One randomly shaped single-domain reseeding scenario.
#[derive(Clone, Debug)]
struct Scenario {
    degree: usize,
    ffs: usize,
    chains: usize,
    use_expander: bool,
    separation: u64,
    /// `(cell selector, value)` care bits (selector reduced mod `ffs`;
    /// later duplicates overwrite earlier ones, as `TestCube` does).
    care: Vec<(usize, bool)>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        0usize..3,
        5usize..40,
        1usize..6,
        any::<bool>(),
        1u64..100,
        proptest::collection::vec((0usize..1000, any::<bool>()), 1..24),
    )
        .prop_map(|(degree_sel, ffs, chains, use_expander, separation, care)| Scenario {
            // Brute-force-checkable degrees only.
            degree: [9, 11, 13][degree_sel],
            ffs,
            chains,
            use_expander,
            separation,
            care,
        })
}

struct Pipeline {
    netlist: Netlist,
    chains: ScanChains,
    poly: LfsrPoly,
    shifter: PhaseShifter,
    expander: Option<SpaceExpander>,
    cells: Vec<NodeId>,
    shift_cycles: usize,
}

fn build_pipeline(s: &Scenario) -> Pipeline {
    let mut netlist = Netlist::new("prop");
    let a = netlist.add_input("a");
    let mut prev = a;
    let mut cells = Vec::new();
    for _ in 0..s.ffs {
        prev = netlist.add_dff(prev, DomainId::new(0));
        cells.push(prev);
    }
    netlist.add_output("y", prev);
    let chains = ScanChains::stitch(&netlist, s.chains.min(s.ffs));
    let n_chains = chains.chains().len();
    let poly = LfsrPoly::maximal(s.degree).expect("tabulated degree");
    let (channels, expander) = if s.use_expander {
        let mut channels = 1usize;
        while channels + channels * (channels - 1) / 2 < n_chains {
            channels += 1;
        }
        (channels, Some(SpaceExpander::new(channels, n_chains)))
    } else {
        (n_chains, None)
    };
    let shifter = PhaseShifter::synthesize(&poly, channels, s.separation);
    let shift_cycles = chains.max_chain_length();
    Pipeline { netlist, chains, poly, shifter, expander, cells, shift_cycles }
}

impl Pipeline {
    fn map(&self, lfsr: &Lfsr) -> ScanLinearMap {
        ScanLinearMap::build(
            &[DomainChannel {
                lfsr,
                shifter: &self.shifter,
                expander: self.expander.as_ref(),
                chains: self.chains.chains(),
            }],
            self.shift_cycles,
        )
    }

    /// Runs the REAL scalar pipeline (LFSR → phase shifter → expander →
    /// shift into chains) from `seed` and returns every cell's settled
    /// value.
    fn real_scan_state(&self, seed: Gf2Vec) -> HashMap<NodeId, bool> {
        let mut prpg = match &self.expander {
            Some(e) => Prpg::with_expander(
                Lfsr::new(self.poly.clone(), seed),
                self.shifter.clone(),
                e.clone(),
            ),
            None => Prpg::new(Lfsr::new(self.poly.clone(), seed), self.shifter.clone()),
        };
        let mut state = HashMap::new();
        for t in 0..self.shift_cycles {
            let bits = prpg.step_vector();
            let cell_pos = self.shift_cycles - 1 - t;
            for (c, chain) in self.chains.chains().iter().enumerate() {
                if let Some(&cell) = chain.cells.get(cell_pos) {
                    state.insert(cell, bits[c]);
                }
            }
        }
        state
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A solved seed, expanded by the real PRPG/phase-shifter/expander
    /// pipeline, reproduces every care bit of the input cube; a cube the
    /// planner stores instead is *truly* unsolvable — no seed in the
    /// whole space satisfies it (verified by brute force).
    #[test]
    fn solved_seeds_round_trip_through_the_real_pipeline(s in arb_scenario()) {
        let p = build_pipeline(&s);
        let lfsr = Lfsr::with_ones_seed(p.poly.clone());
        let map = p.map(&lfsr);
        let mut cube = TestCube::new();
        for &(sel, value) in &s.care {
            cube.assign(p.cells[sel % p.cells.len()], value);
        }
        let cc = CompiledCircuit::compile(&p.netlist).unwrap();
        let plan = ReseedPlanner::new(&map).plan(std::slice::from_ref(&cube), &cc, 0xF00D);

        match &plan.fates[0] {
            CubeFate::Seeded { group } => {
                let seed = plan.seeds[*group][0].clone().expect("single-domain seed");
                let real = p.real_scan_state(seed);
                for &(cell, want) in cube.assignments() {
                    prop_assert_eq!(real[&cell], want, "care bit on {}", cell);
                }
            }
            CubeFate::Stored { index } => {
                // Exhaustive check: every nonzero seed must violate some
                // care bit (otherwise the planner mis-reported).
                let mut satisfiable = false;
                'seeds: for word in 1u64..(1u64 << s.degree) {
                    let seed = Gf2Vec::from_fn(s.degree, |i| (word >> i) & 1 == 1);
                    let real = p.real_scan_state(seed);
                    for &(cell, want) in cube.assignments() {
                        if real[&cell] != want {
                            continue 'seeds;
                        }
                    }
                    satisfiable = true;
                    break;
                }
                prop_assert!(!satisfiable, "planner stored a seedable cube");
                // The stored fallback still honours the care bits.
                let pattern = &plan.stored[*index];
                for &(cell, want) in cube.assignments() {
                    let pos = cc.dffs().iter().position(|&n| n == cell).unwrap();
                    prop_assert_eq!(pattern.ff_values[pos], want);
                }
            }
            CubeFate::Infeasible => prop_assert!(false, "scan-only cube cannot be infeasible"),
        }
    }

    /// Multiple cubes: every seeded cube's care bits hold on its group's
    /// seed through the real pipeline, whatever the packing decided.
    #[test]
    fn packed_groups_round_trip(s in arb_scenario(), extra in proptest::collection::vec((0usize..1000, any::<bool>()), 1..16)) {
        let p = build_pipeline(&s);
        let lfsr = Lfsr::with_ones_seed(p.poly.clone());
        let map = p.map(&lfsr);
        let mk_cube = |bits: &[(usize, bool)]| {
            let mut cube = TestCube::new();
            for &(sel, value) in bits {
                cube.assign(p.cells[sel % p.cells.len()], value);
            }
            cube
        };
        let cubes = vec![mk_cube(&s.care), mk_cube(&extra)];
        let cc = CompiledCircuit::compile(&p.netlist).unwrap();
        let plan = ReseedPlanner::new(&map).plan(&cubes, &cc, 0xBEEF);
        for (cube, fate) in cubes.iter().zip(&plan.fates) {
            if let CubeFate::Seeded { group } = fate {
                let seed = plan.seeds[*group][0].clone().expect("single-domain seed");
                let real = p.real_scan_state(seed);
                for &(cell, want) in cube.assignments() {
                    prop_assert_eq!(real[&cell], want);
                }
            }
        }
    }
}
