//! Seeded CPU-like core generation.

use crate::CoreProfile;
use lbist_netlist::{DomainId, GateKind, Netlist, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates CPU-flavoured netlists matching a [`CoreProfile`].
///
/// The generator composes datapath and control building blocks until the
/// gate budget is met, then closes every flip-flop's `D` input from the
/// accumulated logic. Construction is layered (blocks only consume signals
/// that already exist), so the combinational graph is acyclic by
/// construction; sequential feedback arises only through flip-flops.
///
/// Deterministic: the same profile + seed always yields the same netlist.
///
/// # Example
///
/// ```
/// use lbist_cores::{CoreProfile, CpuCoreGenerator};
/// let profile = CoreProfile::core_x().scaled(200);
/// let nl = CpuCoreGenerator::new(profile, 42).generate();
/// assert!(nl.validate().is_ok());
/// assert!(nl.num_domains() == 2);
/// ```
#[derive(Clone, Debug)]
pub struct CpuCoreGenerator {
    profile: CoreProfile,
    seed: u64,
}

struct Builder<'a> {
    nl: &'a mut Netlist,
    rng: SmallRng,
    /// Per-domain signal pools blocks draw inputs from.
    pools: Vec<Vec<NodeId>>,
    gates: usize,
}

impl<'a> Builder<'a> {
    fn pick(&mut self, domain: usize) -> NodeId {
        // Mostly local signals, occasionally cross-domain (the paper's
        // cores have "cross-clock-domain logic between any two domains").
        let d = if self.pools.len() > 1 && self.rng.gen_bool(0.08) {
            let mut other = self.rng.gen_range(0..self.pools.len());
            if other == domain {
                other = (other + 1) % self.pools.len();
            }
            other
        } else {
            domain
        };
        let pool = &self.pools[d];
        // Bias toward recent signals to keep cones local and depth bounded.
        let n = pool.len();
        let idx = if self.rng.gen_bool(0.7) {
            n - 1 - self.rng.gen_range(0..n.min(48))
        } else {
            self.rng.gen_range(0..n)
        };
        pool[idx]
    }

    /// Picks a signal distinct from everything in `used` (bounded retries;
    /// duplicate pins create redundant — untestable — logic, which real
    /// synthesis output does not contain in bulk).
    fn pick_distinct(&mut self, domain: usize, used: &[NodeId]) -> NodeId {
        for _ in 0..16 {
            let cand = self.pick(domain);
            if !used.contains(&cand) {
                return cand;
            }
        }
        self.pick(domain)
    }

    fn emit(&mut self, domain: usize, kind: GateKind, fanins: &[NodeId]) -> NodeId {
        let id = self.nl.add_gate(kind, fanins);
        self.pools[domain].push(id);
        self.gates += 1;
        id
    }

    /// Ripple-carry ALU slice chain: XOR sum, AND/OR carries, function mux.
    fn alu_block(&mut self, domain: usize, width: usize) {
        let mut carry = self.pick(domain);
        let sel = self.pick(domain);
        for _ in 0..width {
            let a = self.pick(domain);
            let b = self.pick_distinct(domain, &[a]);
            let axb = self.emit(domain, GateKind::Xor, &[a, b]);
            let sum = self.emit(domain, GateKind::Xor, &[axb, carry]);
            let g = self.emit(domain, GateKind::And, &[a, b]);
            let p = self.emit(domain, GateKind::And, &[axb, carry]);
            carry = self.emit(domain, GateKind::Or, &[g, p]);
            let logic = self.emit(domain, GateKind::Nand, &[a, b]);
            self.emit(domain, GateKind::Mux2, &[sel, sum, logic]);
        }
    }

    /// Instruction-decoder-style AND plane: minterms of a few select lines.
    fn decoder_block(&mut self, domain: usize, sel_bits: usize, outputs: usize) {
        let sels: Vec<NodeId> = (0..sel_bits).map(|_| self.pick(domain)).collect();
        let nsels: Vec<NodeId> =
            sels.iter().map(|&s| self.emit(domain, GateKind::Not, &[s])).collect();
        for o in 0..outputs {
            let term: Vec<NodeId> =
                (0..sel_bits).map(|b| if (o >> b) & 1 == 1 { sels[b] } else { nsels[b] }).collect();
            self.emit(domain, GateKind::And, &term);
        }
    }

    /// Wide equality comparator: XNOR bits reduced by an AND tree — the
    /// canonical random-pattern-resistant structure (output is 1 only when
    /// all `width` bit pairs match: probability `2^-width`).
    fn comparator_block(&mut self, domain: usize, width: usize) {
        let mut eqs = Vec::with_capacity(width);
        for _ in 0..width {
            let a = self.pick(domain);
            let b = self.pick_distinct(domain, &[a]);
            eqs.push(self.emit(domain, GateKind::Xnor, &[a, b]));
        }
        while eqs.len() > 1 {
            let mut next = Vec::with_capacity(eqs.len().div_ceil(2));
            for pair in eqs.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.emit(domain, GateKind::And, &[pair[0], pair[1]])
                } else {
                    pair[0]
                });
            }
            eqs = next;
        }
    }

    /// Barrel-shifter-style mux layers.
    fn shifter_block(&mut self, domain: usize, width: usize, stages: usize) {
        let mut lane: Vec<NodeId> = (0..width).map(|_| self.pick(domain)).collect();
        for s in 0..stages {
            let sel = self.pick(domain);
            let shift = 1 << s.min(4);
            let mut next = Vec::with_capacity(width);
            for i in 0..width {
                let a = lane[i];
                let b = lane[(i + shift) % width];
                next.push(self.emit(domain, GateKind::Mux2, &[sel, a, b]));
            }
            lane = next;
        }
    }

    /// Parity / checksum cone.
    fn parity_block(&mut self, domain: usize, width: usize) {
        let mut acc = self.pick(domain);
        for _ in 0..width {
            let a = self.pick_distinct(domain, &[acc]);
            acc = self.emit(domain, GateKind::Xor, &[acc, a]);
        }
    }

    /// Dense random control cloud.
    fn control_block(&mut self, domain: usize, gates: usize) {
        for _ in 0..gates {
            let kind = match self.rng.gen_range(0..6) {
                0 => GateKind::And,
                1 => GateKind::Or,
                2 => GateKind::Nand,
                3 => GateKind::Nor,
                4 => GateKind::Xor,
                _ => GateKind::Mux2,
            };
            let arity = if kind == GateKind::Mux2 { 3 } else { self.rng.gen_range(2..=4) };
            let mut fanins: Vec<NodeId> = Vec::with_capacity(arity);
            for _ in 0..arity {
                let next = self.pick_distinct(domain, &fanins);
                fanins.push(next);
            }
            self.emit(domain, kind, &fanins);
        }
    }
}

impl CpuCoreGenerator {
    /// Creates a generator.
    pub fn new(profile: CoreProfile, seed: u64) -> Self {
        CpuCoreGenerator { profile, seed }
    }

    /// The profile being generated.
    pub fn profile(&self) -> &CoreProfile {
        &self.profile
    }

    /// Builds the netlist.
    pub fn generate(&self) -> Netlist {
        let p = &self.profile;
        let mut nl = Netlist::new(p.name.clone());
        let rng = SmallRng::seed_from_u64(self.seed);

        // Primary inputs, dealt round-robin into domain pools.
        let mut pools: Vec<Vec<NodeId>> = vec![Vec::new(); p.num_domains.max(1)];
        for i in 0..p.num_pis.max(4) {
            let pi = nl.add_input(&format!("pi{i}"));
            let k = i % pools.len();
            pools[k].push(pi);
        }
        // X-sources (memory read ports, analog status bits).
        for i in 0..p.num_xsources {
            let x = nl.add_xsource();
            nl.set_name(x, &format!("mem_q{i}"));
            let k = i % pools.len();
            pools[k].push(x);
        }

        // Flip-flops first (floating): their Q outputs join the pools so
        // logic can consume state; D pins are closed at the end.
        let mut ffs: Vec<(NodeId, usize)> = Vec::with_capacity(p.target_ffs);
        // The first domain is the "main" domain with roughly half the
        // flops (mirrors the paper's 99-chain main domain on Core X).
        let mut ff_share: Vec<usize> = vec![0; p.num_domains.max(1)];
        for (i, share) in ff_share.iter_mut().enumerate() {
            *share = if i == 0 && p.num_domains > 1 {
                p.target_ffs / 2
            } else {
                (p.target_ffs - p.target_ffs / 2) / (p.num_domains - 1).max(1)
            };
        }
        if p.num_domains == 1 {
            ff_share[0] = p.target_ffs;
        }
        for (d, &share) in ff_share.iter().enumerate() {
            for _ in 0..share.max(1) {
                let ff = nl.add_dff_floating(DomainId::new(d as u16));
                pools[d].push(ff);
                ffs.push((ff, d));
            }
        }

        let mut b = Builder { nl: &mut nl, rng, pools, gates: 0 };
        // Deal blocks until the budget is met; block mix keeps wide
        // comparators a modest fraction so random coverage lands in the
        // low 90s like the paper's cores.
        while b.gates < p.target_gates {
            let domain = b.rng.gen_range(0..b.pools.len());
            let (kind_roll, p1, p2) =
                (b.rng.gen_range(0..100), b.rng.gen_range(0..64usize), b.rng.gen_range(0..64usize));
            match kind_roll {
                0..=29 => b.alu_block(domain, 4 + p1 % 13),
                30..=44 => b.decoder_block(domain, 3 + p1 % 3, 8),
                45..=52 => b.comparator_block(domain, 8 + p1 % 13),
                53..=67 => b.shifter_block(domain, 4 + p1 % 9, 2 + p2 % 3),
                68..=77 => b.parity_block(domain, 4 + p1 % 9),
                _ => b.control_block(domain, 8 + p1 % 33),
            }
        }

        // Close every flip-flop's D from its own domain's recent logic.
        let mut rng = b.rng;
        let pools = b.pools;
        for (ff, d) in ffs {
            let pool = &pools[d];
            let idx = pool.len() - 1 - rng.gen_range(0..pool.len().min(2048));
            let src = pool[idx];
            let src = if src == ff {
                // Avoid a pure self-loop; take a neighbour instead.
                pool[(idx + 1) % pool.len()]
            } else {
                src
            };
            nl.set_fanin(ff, 0, src).expect("pin 0 exists on a DFF");
        }

        // Primary outputs tap late signals.
        for i in 0..p.num_pos.max(2) {
            let d = i % pools.len();
            let pool = &pools[d];
            let src = pool[pool.len() - 1 - rng.gen_range(0..pool.len().min(256))];
            nl.add_output(&format!("po{i}"), src);
        }

        // Dead-logic sweep: any signal nothing reads would be untestable
        // dead weight, which synthesized cores do not ship. Fold unread
        // signals into XOR checksum cones feeding extra outputs (the moral
        // equivalent of a status/signature register reading otherwise
        // write-only state).
        let fanouts = lbist_netlist::Fanouts::compute(&nl);
        let dead: Vec<NodeId> = nl
            .ids()
            .filter(|&id| {
                let k = nl.kind(id);
                fanouts.degree(id) == 0
                    && !matches!(
                        k,
                        GateKind::Output | GateKind::Const0 | GateKind::Const1 | GateKind::XSource
                    )
            })
            .collect();
        for (i, chunk) in dead.chunks(8).enumerate() {
            let mut acc = chunk[0];
            for &n in &chunk[1..] {
                acc = nl.add_gate(GateKind::Xor, &[acc, n]);
            }
            if chunk.len() == 1 {
                acc = nl.add_gate(GateKind::Buf, &[acc]);
            }
            nl.add_output(&format!("chk{i}"), acc);
        }

        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbist_netlist::NetlistStats;

    fn small_profile() -> CoreProfile {
        CoreProfile::core_x().scaled(200) // ~1K gates
    }

    #[test]
    fn deterministic_generation() {
        let a = CpuCoreGenerator::new(small_profile(), 7).generate();
        let b = CpuCoreGenerator::new(small_profile(), 7).generate();
        assert_eq!(lbist_netlist::to_bench(&a), lbist_netlist::to_bench(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = CpuCoreGenerator::new(small_profile(), 1).generate();
        let b = CpuCoreGenerator::new(small_profile(), 2).generate();
        assert_ne!(lbist_netlist::to_bench(&a), lbist_netlist::to_bench(&b));
    }

    #[test]
    fn hits_structural_targets() {
        let p = small_profile();
        let nl = CpuCoreGenerator::new(p.clone(), 3).generate();
        assert!(nl.validate().is_ok());
        let stats = NetlistStats::compute(&nl);
        assert!(
            stats.num_gates >= p.target_gates,
            "gates {} < {}",
            stats.num_gates,
            p.target_gates
        );
        assert!(stats.num_gates < p.target_gates * 2);
        assert_eq!(stats.num_domains, p.num_domains);
        assert!(stats.num_ffs >= p.target_ffs);
        assert_eq!(stats.num_xsources, p.num_xsources);
    }

    #[test]
    fn has_cross_domain_paths() {
        let nl = CpuCoreGenerator::new(small_profile(), 5).generate();
        // Find at least one gate reading a FF of a different domain than
        // the FF that eventually captures it — approximate by checking
        // some gate has fanins whose *driving FF domains* differ.
        let mut found = false;
        'outer: for id in nl.ids() {
            if !nl.kind(id).is_logic() {
                continue;
            }
            let domains: Vec<_> = nl.fanins(id).iter().filter_map(|&f| nl.domain(f)).collect();
            if domains.windows(2).any(|w| w[0] != w[1]) {
                found = true;
                break 'outer;
            }
        }
        assert!(found, "expected cross-domain logic");
    }

    #[test]
    fn multi_domain_core_y_profile() {
        let p = CoreProfile::core_y().scaled(400);
        let nl = CpuCoreGenerator::new(p, 9).generate();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.num_domains(), 8);
    }

    #[test]
    fn simulatable() {
        use lbist_sim::{CompiledCircuit, SeqSim};
        let nl = CpuCoreGenerator::new(small_profile(), 11).generate();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let mut sim = SeqSim::new(&cc);
        for &pi in cc.inputs() {
            sim.set_input(pi, 0xAAAA_5555_F0F0_0F0F);
        }
        sim.run_cycles(4);
        // Some PO must have toggled away from all-zero.
        let any = cc.outputs().iter().any(|&po| sim.value(po) != 0);
        assert!(any, "the core must produce activity");
    }
}
