//! Structural profiles of the paper's evaluation cores.

use std::fmt;

/// The structural parameters of an IP core, as reported in the top rows of
/// Table 1.
///
/// # Example
///
/// ```
/// use lbist_cores::CoreProfile;
/// let x = CoreProfile::core_x();
/// assert_eq!(x.num_domains, 2);
/// let small = x.scaled(10);
/// assert_eq!(small.target_ffs, x.target_ffs / 10);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CoreProfile {
    /// Display name.
    pub name: String,
    /// Target logic gate count (the generator lands within a few percent).
    pub target_gates: usize,
    /// Target flip-flop count.
    pub target_ffs: usize,
    /// Number of clock domains.
    pub num_domains: usize,
    /// Functional frequency (MHz) of each domain (cycled if shorter than
    /// `num_domains`).
    pub freq_mhz: Vec<f64>,
    /// Scan chain budget for DFT.
    pub num_chains: usize,
    /// Unknown-value sources to embed (memory models etc.).
    pub num_xsources: usize,
    /// Primary inputs.
    pub num_pis: usize,
    /// Primary outputs.
    pub num_pos: usize,
}

impl CoreProfile {
    /// Core X of Table 1: 218.1K gates, 10.3K FFs, 2 domains @ 250 MHz,
    /// 100 chains.
    pub fn core_x() -> Self {
        CoreProfile {
            name: "core-x".to_string(),
            target_gates: 218_100,
            target_ffs: 10_300,
            num_domains: 2,
            freq_mhz: vec![250.0, 250.0],
            num_chains: 100,
            num_xsources: 8,
            num_pis: 128,
            num_pos: 128,
        }
    }

    /// Core Y of Table 1: 633.4K gates, 33.2K FFs, 8 domains @ 330 MHz,
    /// 106 chains.
    pub fn core_y() -> Self {
        CoreProfile {
            name: "core-y".to_string(),
            target_gates: 633_400,
            target_ffs: 33_200,
            num_domains: 8,
            freq_mhz: vec![330.0; 8],
            num_chains: 106,
            num_xsources: 24,
            num_pis: 256,
            num_pos: 256,
        }
    }

    /// Shrinks gate/FF/chain counts by `divisor` (domains, frequencies and
    /// IO stay put), renaming to `<name>@1/<divisor>`. Used for
    /// laptop-scale experiment runs.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn scaled(&self, divisor: usize) -> Self {
        assert!(divisor > 0, "scale divisor must be nonzero");
        if divisor == 1 {
            return self.clone();
        }
        CoreProfile {
            name: format!("{}@1/{}", self.name, divisor),
            target_gates: (self.target_gates / divisor).max(200),
            target_ffs: (self.target_ffs / divisor).max(8 * self.num_domains),
            num_chains: (self.num_chains / divisor).max(self.num_domains).max(2),
            num_xsources: (self.num_xsources / divisor).max(1),
            num_pis: (self.num_pis / divisor).max(8),
            num_pos: (self.num_pos / divisor).max(8),
            ..self.clone()
        }
    }

    /// Frequency of one domain (cycling the table if needed).
    pub fn domain_freq_mhz(&self, domain: usize) -> f64 {
        self.freq_mhz[domain % self.freq_mhz.len()]
    }
}

impl fmt::Display for CoreProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ~{}K gates, ~{} FFs, {} domains, {} chains",
            self.name,
            self.target_gates / 1000,
            self.target_ffs,
            self.num_domains,
            self.num_chains
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        let x = CoreProfile::core_x();
        assert_eq!(x.target_gates, 218_100);
        assert_eq!(x.target_ffs, 10_300);
        assert_eq!(x.num_chains, 100);
        let y = CoreProfile::core_y();
        assert_eq!(y.num_domains, 8);
        assert_eq!(y.domain_freq_mhz(5), 330.0);
    }

    #[test]
    fn scaling_keeps_domains() {
        let y = CoreProfile::core_y().scaled(10);
        assert_eq!(y.num_domains, 8);
        assert_eq!(y.target_ffs, 3_320);
        assert!(y.num_chains >= y.num_domains);
        assert!(y.name.contains("1/10"));
    }

    #[test]
    fn scale_one_is_identity() {
        let x = CoreProfile::core_x();
        assert_eq!(x.scaled(1), x);
    }

    #[test]
    fn extreme_scaling_clamps() {
        let x = CoreProfile::core_x().scaled(1_000_000);
        assert!(x.target_gates >= 200);
        assert!(x.target_ffs >= 16);
        assert!(x.num_chains >= 2);
    }
}
