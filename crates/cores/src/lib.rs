//! Circuit sources for the reproduction.
//!
//! The paper evaluates on two commercial CPU IP cores that cannot be
//! redistributed (Table 1: Core X, 218.1K gates / 10.3K FFs / 2 clock
//! domains @ 250 MHz; Core Y, 633.4K gates / 33.2K FFs / 8 domains @ 330
//! MHz). What the experiments measure — random-pattern coverage growth,
//! the value of fault-sim-guided observation points, top-up pattern
//! counts, per-domain BIST integrity — depends on a core's *structural
//! testability profile*, not its ISA. This crate synthesises cores with
//! matching profiles:
//!
//! * [`CoreProfile`] — the Table 1 structural parameters, with
//!   [`CoreProfile::core_x`]/[`CoreProfile::core_y`] presets and a
//!   [`CoreProfile::scaled`] knob for laptop-scale runs.
//! * [`CpuCoreGenerator`] — seeded, deterministic generation from CPU-ish
//!   building blocks: ALU bit-slices with carry chains, instruction-style
//!   AND-plane decoders, wide comparators (the classic random-pattern-
//!   resistant structure), mux trees, XOR/parity cones and register
//!   banks, spread over multiple clock domains with cross-domain paths
//!   and a few X-sources.
//! * [`RandomLogicGenerator`] — unstructured layered random logic, for
//!   stress tests.
//! * [`benchmarks`] — tiny public-domain circuits (c17, s27) embedded for
//!   unit tests and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
mod cpu;
mod profile;
mod randlogic;

pub use cpu::CpuCoreGenerator;
pub use profile::CoreProfile;
pub use randlogic::RandomLogicGenerator;
