//! Tiny public benchmark circuits, embedded as `.bench` text.
//!
//! Two classics small enough to reason about by hand: ISCAS-85's `c17`
//! (six NAND gates) and ISCAS-89's `s27` (three flip-flops). They anchor
//! unit tests and examples with circuits whose behaviour is known from
//! thirty years of literature.

use lbist_netlist::{parse_bench, Netlist};

/// ISCAS-85 c17: 5 inputs, 2 outputs, 6 NAND gates.
pub const C17_BENCH: &str = "\
# ISCAS-85 c17
INPUT(g1)
INPUT(g2)
INPUT(g3)
INPUT(g6)
INPUT(g7)
OUTPUT(g22)
OUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
";

/// ISCAS-89 s27: 4 inputs, 1 output, 3 flip-flops, 10 gates.
pub const S27_BENCH: &str = "\
# ISCAS-89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";

/// Parses the embedded c17.
///
/// # Example
///
/// ```
/// let nl = lbist_cores::benchmarks::c17();
/// assert_eq!(nl.inputs().len(), 5);
/// assert_eq!(nl.gate_count(), 6);
/// ```
pub fn c17() -> Netlist {
    let mut nl = parse_bench(C17_BENCH).expect("embedded c17 is well-formed");
    nl.set_design_name("c17");
    nl
}

/// Parses the embedded s27.
///
/// # Example
///
/// ```
/// let nl = lbist_cores::benchmarks::s27();
/// assert_eq!(nl.dffs().len(), 3);
/// ```
pub fn s27() -> Netlist {
    let mut nl = parse_bench(S27_BENCH).expect("embedded s27 is well-formed");
    nl.set_design_name("s27");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbist_sim::CompiledCircuit;

    #[test]
    fn c17_structure() {
        let nl = c17();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 6);
        assert_eq!(nl.dffs().len(), 0);
    }

    #[test]
    fn c17_truth_spot_checks() {
        // g22 = NAND(NAND(g1,g3), NAND(g2, NAND(g3,g6))).
        let nl = c17();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let mut frame = cc.new_frame();
        // Pattern 0: all inputs 0 -> g10=1, g11=1, g16=1, g22=NAND(1,1)=0.
        // Pattern 1: g1=g3=1, others 0 -> g10=0 -> g22=1.
        let set = |frame: &mut Vec<u64>, name: &str, word: u64| {
            let id = nl.find(name).unwrap();
            frame[id.index()] = word;
        };
        set(&mut frame, "g1", 0b10);
        set(&mut frame, "g3", 0b10);
        cc.eval2(&mut frame);
        let g22 = nl.find("g22").unwrap();
        assert_eq!(frame[g22.index()] & 0b11, 0b10);
    }

    #[test]
    fn s27_structure_and_simulation() {
        let nl = s27();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.dffs().len(), 3);
        assert_eq!(nl.outputs().len(), 1);
        // Sequential sanity: runs without X (2-valued sim init 0).
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let mut sim = lbist_sim::SeqSim::new(&cc);
        for &pi in cc.inputs() {
            sim.set_input(pi, 0x0F0F_0F0F_0F0F_0F0F);
        }
        sim.run_cycles(5);
        let po = cc.outputs()[0];
        let _ = sim.value(po); // reachable, no panic
    }

    #[test]
    fn full_stuck_at_coverage_of_c17_is_reachable() {
        // c17 is fully testable: exhaustive 32-pattern grading must reach
        // 100% collapsed coverage.
        let nl = c17();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let universe = lbist_fault::FaultUniverse::stuck_at(&nl);
        let mut sim = lbist_fault::StuckAtSim::new(
            &cc,
            universe.representatives(),
            lbist_fault::StuckAtSim::observe_all_captures(&cc),
        );
        let mut frame = cc.new_frame();
        for (bit, &pi) in cc.inputs().iter().enumerate() {
            let mut word = 0u64;
            for p in 0..32u64 {
                if (p >> bit) & 1 == 1 {
                    word |= 1 << p;
                }
            }
            frame[pi.index()] = word;
        }
        sim.run_batch(&mut frame, 32);
        let cov = sim.coverage();
        assert_eq!(cov.detected, cov.total, "undetected: {:?}", sim.undetected());
    }
}
