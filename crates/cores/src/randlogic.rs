//! Unstructured layered random logic.

use lbist_netlist::{DomainId, GateKind, Netlist, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates layered random combinational/sequential logic with no CPU
/// structure — a null-model counterpart to [`crate::CpuCoreGenerator`] for
/// stress tests and generator-independent sanity checks.
///
/// # Example
///
/// ```
/// use lbist_cores::RandomLogicGenerator;
/// let nl = RandomLogicGenerator::new(500, 40, 2, 13).generate();
/// assert!(nl.validate().is_ok());
/// assert_eq!(nl.dffs().len(), 40);
/// ```
#[derive(Clone, Debug)]
pub struct RandomLogicGenerator {
    gates: usize,
    ffs: usize,
    domains: usize,
    seed: u64,
}

impl RandomLogicGenerator {
    /// Creates a generator for roughly `gates` gates, exactly `ffs`
    /// flip-flops over `domains` clock domains.
    ///
    /// # Panics
    ///
    /// Panics if `domains` is zero.
    pub fn new(gates: usize, ffs: usize, domains: usize, seed: u64) -> Self {
        assert!(domains > 0, "need at least one clock domain");
        RandomLogicGenerator { gates, ffs, domains, seed }
    }

    /// Builds the netlist.
    pub fn generate(&self) -> Netlist {
        let mut nl = Netlist::new(format!("rand{}g{}f", self.gates, self.ffs));
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let num_pis = (self.gates / 20).clamp(4, 64);
        let mut pool: Vec<NodeId> = (0..num_pis).map(|i| nl.add_input(&format!("pi{i}"))).collect();
        let ffs: Vec<NodeId> = (0..self.ffs)
            .map(|i| {
                let ff = nl.add_dff_floating(DomainId::new((i % self.domains) as u16));
                pool.push(ff);
                ff
            })
            .collect();
        for _ in 0..self.gates {
            let kind = match rng.gen_range(0..8) {
                0 | 1 => GateKind::And,
                2 | 3 => GateKind::Or,
                4 => GateKind::Nand,
                5 => GateKind::Nor,
                6 => GateKind::Xor,
                _ => GateKind::Not,
            };
            let arity = if kind == GateKind::Not { 1 } else { rng.gen_range(2..=3) };
            let fanins: Vec<NodeId> =
                (0..arity).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let g = nl.add_gate(kind, &fanins);
            pool.push(g);
        }
        for ff in ffs {
            let mut src = pool[rng.gen_range(0..pool.len())];
            if src == ff {
                src = pool[0];
            }
            nl.set_fanin(ff, 0, src).expect("D pin");
        }
        let num_pos = (self.gates / 25).clamp(2, 64);
        for i in 0..num_pos {
            let src = pool[pool.len() - 1 - rng.gen_range(0..pool.len().min(64))];
            nl.add_output(&format!("po{i}"), src);
        }
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_requested_sizes() {
        let nl = RandomLogicGenerator::new(300, 25, 3, 1).generate();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.dffs().len(), 25);
        assert_eq!(nl.num_domains(), 3);
        assert!(nl.gate_count() >= 300);
    }

    #[test]
    fn deterministic() {
        let a = RandomLogicGenerator::new(100, 10, 1, 4).generate();
        let b = RandomLogicGenerator::new(100, 10, 1, 4).generate();
        assert_eq!(lbist_netlist::to_bench(&a), lbist_netlist::to_bench(&b));
    }

    #[test]
    fn zero_gates_still_valid() {
        let nl = RandomLogicGenerator::new(0, 4, 2, 9).generate();
        assert!(nl.validate().is_ok());
    }
}
