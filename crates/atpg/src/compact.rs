//! Static pattern compaction: merging compatible test cubes.
//!
//! The top-up flow already does *dynamic* compaction (fault dropping);
//! static compaction squeezes the pattern count further by merging cubes
//! that agree on every specified bit — two cubes are compatible when no
//! node is assigned opposite values. Fewer top-up patterns means less
//! tester memory for the deterministic phase, the paper's "# of Top-Up
//! Patterns" row.

use crate::pattern::TestCube;
use lbist_netlist::NodeId;

/// Returns `true` when two cubes can be merged (no conflicting
/// assignment).
///
/// # Example
///
/// ```
/// use lbist_atpg::{compatible, TestCube};
/// use lbist_netlist::NodeId;
/// let n = NodeId::from_index(0);
/// let mut a = TestCube::new();
/// a.assign(n, true);
/// let mut b = TestCube::new();
/// b.assign(n, false);
/// assert!(!compatible(&a, &b));
/// ```
pub fn compatible(a: &TestCube, b: &TestCube) -> bool {
    a.assignments().iter().all(|&(node, va)| b.value_of(node).is_none_or(|vb| vb == va))
}

/// Merges `b` into `a` (union of assignments).
///
/// # Panics
///
/// Panics if the cubes conflict.
pub fn merge(a: &TestCube, b: &TestCube) -> TestCube {
    assert!(compatible(a, b), "cannot merge conflicting cubes");
    let mut out = a.clone();
    for &(node, v) in b.assignments() {
        out.assign(node, v);
    }
    out
}

/// Greedy static compaction: first-fit merging of compatible cubes.
///
/// Classic first-fit-decreasing by specified-bit count: densest cubes
/// anchor the bins, sparse cubes (mostly don't-cares) fold into them.
/// Returns the merged cubes plus, for each input cube, which output it
/// landed in.
pub fn compact_cubes(cubes: &[TestCube]) -> (Vec<TestCube>, Vec<usize>) {
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].specified()));
    let mut bins: Vec<TestCube> = Vec::new();
    let mut placement = vec![0usize; cubes.len()];
    for &i in &order {
        let cube = &cubes[i];
        match bins.iter_mut().position(|b| compatible(b, cube)) {
            Some(slot) => {
                bins[slot] = merge(&bins[slot], cube);
                placement[i] = slot;
            }
            None => {
                placement[i] = bins.len();
                bins.push(cube.clone());
            }
        }
    }
    (bins, placement)
}

/// Convenience: the merged cube count for a quick "how much would static
/// compaction save" probe.
pub fn compacted_count(cubes: &[TestCube]) -> usize {
    compact_cubes(cubes).0.len()
}

/// Helper to build a cube from `(node, value)` pairs.
pub fn cube_of(assignments: &[(NodeId, bool)]) -> TestCube {
    let mut c = TestCube::new();
    for &(n, v) in assignments {
        c.assign(n, v);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn disjoint_cubes_merge_into_one() {
        let a = cube_of(&[(n(0), true)]);
        let b = cube_of(&[(n(1), false)]);
        let c = cube_of(&[(n(2), true)]);
        let (bins, placement) = compact_cubes(&[a, b, c]);
        assert_eq!(bins.len(), 1);
        assert_eq!(placement, vec![0, 0, 0]);
        assert_eq!(bins[0].specified(), 3);
    }

    #[test]
    fn conflicting_cubes_stay_apart() {
        let a = cube_of(&[(n(0), true), (n(1), true)]);
        let b = cube_of(&[(n(0), false)]);
        let (bins, _) = compact_cubes(&[a.clone(), b.clone()]);
        assert_eq!(bins.len(), 2);
        // ... and merging them directly panics.
        assert!(!compatible(&a, &b));
    }

    #[test]
    fn agreeing_overlap_merges() {
        let a = cube_of(&[(n(0), true), (n(1), false)]);
        let b = cube_of(&[(n(1), false), (n(2), true)]);
        assert!(compatible(&a, &b));
        let m = merge(&a, &b);
        assert_eq!(m.specified(), 3);
        assert_eq!(m.value_of(n(1)), Some(false));
    }

    #[test]
    #[should_panic(expected = "conflicting")]
    fn merge_rejects_conflicts() {
        let a = cube_of(&[(n(0), true)]);
        let b = cube_of(&[(n(0), false)]);
        merge(&a, &b);
    }

    #[test]
    fn first_fit_decreasing_is_no_worse_than_input() {
        // A chain of pairwise-conflicting cubes cannot compact at all.
        let cubes: Vec<TestCube> =
            (0..5).map(|i| cube_of(&[(n(0), i % 2 == 0), (n(i + 1), true)])).collect();
        let (bins, _) = compact_cubes(&cubes);
        assert!(bins.len() <= cubes.len());
        assert!(bins.len() >= 2, "alternating n0 polarity forces >= 2 bins");
    }

    #[test]
    fn empty_input() {
        let (bins, placement) = compact_cubes(&[]);
        assert!(bins.is_empty());
        assert!(placement.is_empty());
        assert_eq!(compacted_count(&[]), 0);
    }

    #[test]
    fn realistic_sparse_cubes_compact_well() {
        // PODEM cubes for wide-AND faults specify few bits: dozens of them
        // collapse into a handful of patterns.
        let mut cubes = Vec::new();
        for i in 0..24 {
            cubes.push(cube_of(&[(n(i * 3), true), (n(i * 3 + 1), true)]));
        }
        let count = compacted_count(&cubes);
        assert_eq!(count, 1, "fully disjoint sparse cubes fold into one pattern");
    }
}
