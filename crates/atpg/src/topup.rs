//! The top-up flow: deterministic patterns for the random-resistant tail.

use crate::pattern::{Pattern, TestCube};
use crate::podem::{AtpgOutcome, Podem};
use lbist_fault::{Fault, StuckAtSim};
use lbist_netlist::NodeId;
use lbist_sim::CompiledCircuit;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Result of a top-up ATPG run — the numbers behind Table 1's
/// "# of Top-Up Patterns" and "Fault Coverage 2" rows.
#[derive(Clone, Debug)]
pub struct TopUpReport {
    /// The generated patterns, in generation order.
    pub patterns: Vec<Pattern>,
    /// The partially-specified cubes the patterns were filled from,
    /// aligned with `patterns` (`patterns[i]` is `cubes[i]` random-filled,
    /// with the pinned inputs applied). Hybrid-BIST reseeding consumes
    /// these care-bit masks instead of the filled patterns.
    pub cubes: Vec<TestCube>,
    /// Faults from the target list detected by the patterns (dynamic
    /// compaction credits patterns with every fault they catch).
    pub faults_detected: usize,
    /// Faults proven untestable (excluded from coverage in the usual
    /// "testable fault coverage" convention — reported separately here).
    pub untestable: usize,
    /// Faults abandoned at the backtrack limit.
    pub aborted: usize,
}

impl fmt::Display for TopUpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} top-up patterns, +{} faults, {} untestable, {} aborted",
            self.patterns.len(),
            self.faults_detected,
            self.untestable,
            self.aborted
        )
    }
}

/// Minimum PODEM targets per worker shard before another pool worker is
/// engaged: below this, shard dispatch overhead rivals the search work.
/// Explicit [`TopUpAtpg::set_threads`] budgets are honoured exactly.
const MIN_SHARD_TARGETS: usize = 4;

/// Top-up ATPG: PODEM per surviving fault with dynamic compaction by fault
/// dropping.
///
/// # Parallel generation
///
/// PODEM outcomes are a pure function of (circuit, observation set,
/// backtrack limit, fault) — [`Podem::generate`] resets all search
/// state per call — so each pass **speculatively generates the
/// outcomes of every live target in parallel** on the `lbist-exec`
/// pool (one `Podem` engine per worker shard), then a serial replay
/// walks the targets in order applying the exact skip rules, random
/// fill and 64-pattern flush batching of the serial algorithm. The
/// replay consumes precomputed outcomes where they exist and generates
/// on demand where they don't, so parallel and serial runs produce
/// **byte-identical** [`TopUpReport`]s (patterns, cubes and counts —
/// enforced by test). Speculation only costs work for targets an
/// earlier pattern of the same pass happens to catch.
///
/// # Example
///
/// ```
/// use lbist_netlist::{Netlist, GateKind, NodeId};
/// use lbist_sim::CompiledCircuit;
/// use lbist_fault::{Fault, FaultKind, StuckAtSim};
/// use lbist_atpg::TopUpAtpg;
///
/// // A wide AND is random-resistant: give its output SA0 to top-up.
/// let mut nl = Netlist::new("t");
/// let ins: Vec<NodeId> = (0..10).map(|i| nl.add_input(&format!("i{i}"))).collect();
/// let g = nl.add_gate(GateKind::And, &ins);
/// nl.add_output("y", g);
/// let cc = CompiledCircuit::compile(&nl).unwrap();
///
/// let targets = vec![Fault::stem(g, FaultKind::StuckAt0)];
/// let report = TopUpAtpg::new(&cc, StuckAtSim::observe_all_captures(&cc))
///     .run(&targets, 7);
/// assert_eq!(report.patterns.len(), 1);
/// assert_eq!(report.faults_detected, 1);
/// ```
#[derive(Debug)]
pub struct TopUpAtpg<'a> {
    cc: &'a CompiledCircuit,
    observed: Vec<NodeId>,
    backtrack_limit: usize,
    /// Pins held at fixed values in every generated pattern (e.g.
    /// `test_mode = 1`).
    pinned: Vec<(NodeId, bool)>,
    /// Worker budget for speculative generation (1 = fully serial).
    threads: usize,
    /// `true` until [`TopUpAtpg::set_threads`]: auto mode also respects
    /// [`MIN_SHARD_TARGETS`].
    threads_auto: bool,
}

impl<'a> TopUpAtpg<'a> {
    /// Creates the flow over the given observation set. Generation uses
    /// the shared `lbist-exec` pool; see [`TopUpAtpg::set_threads`] and
    /// [`TopUpAtpg::serial`].
    pub fn new(cc: &'a CompiledCircuit, observed: Vec<NodeId>) -> Self {
        TopUpAtpg {
            cc,
            observed,
            backtrack_limit: 512,
            pinned: Vec::new(),
            threads: lbist_exec::current_num_threads(),
            threads_auto: true,
        }
    }

    /// Sets the PODEM backtrack limit.
    pub fn set_backtrack_limit(&mut self, limit: usize) -> &mut Self {
        self.backtrack_limit = limit;
        self
    }

    /// Sets the worker budget for speculative PODEM generation (`1` =
    /// serial). Reports are byte-identical at every budget.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn set_threads(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "at least one generation thread is required");
        self.threads = n;
        self.threads_auto = false;
        self
    }

    /// Pins generation to the calling thread (the determinism escape
    /// hatch — though parallel runs are byte-identical anyway).
    pub fn serial(mut self) -> Self {
        self.set_threads(1);
        self
    }

    /// Holds an input at a fixed value in every pattern (test_mode pins).
    pub fn pin(&mut self, node: NodeId, value: bool) -> &mut Self {
        self.pinned.push((node, value));
        self
    }

    /// Generates top-up patterns for `targets` (the faults the random
    /// phase left undetected). Deterministic in `seed`.
    pub fn run(&self, targets: &[Fault], seed: u64) -> TopUpReport {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = StuckAtSim::new(self.cc, targets.to_vec(), self.observed.clone());
        let mut patterns: Vec<Pattern> = Vec::new();
        let mut cubes: Vec<TestCube> = Vec::new();
        let mut untestable = 0usize;
        let mut aborted = 0usize;
        // Batch pending patterns and grade them 64 at a time.
        let mut pending: Vec<Pattern> = Vec::new();

        let flush =
            |pending: &mut Vec<Pattern>, sim: &mut StuckAtSim, patterns: &mut Vec<Pattern>| {
                if pending.is_empty() {
                    return;
                }
                let mut frame = self.cc.new_frame();
                for (lane, p) in pending.iter().enumerate() {
                    p.load_into_lane(self.cc, &mut frame, lane);
                }
                sim.run_batch(&mut frame, pending.len());
                patterns.append(pending);
            };

        // Abort-limited scheduling: a cheap low-backtrack pass clears the
        // easy faults fast; only its aborts get the full budget.
        let mut podem = Podem::new(self.cc, self.observed.clone());
        let mut resolved = vec![false; targets.len()];
        let limits: Vec<usize> = if self.backtrack_limit > 24 {
            vec![24, self.backtrack_limit]
        } else {
            vec![self.backtrack_limit]
        };
        let n_passes = limits.len();
        for (pass, limit) in limits.into_iter().enumerate() {
            let last = pass + 1 == n_passes;
            podem.set_backtrack_limit(limit);

            // Speculative parallel generation: every target still live at
            // pass start (unresolved and undetected as of the last flush)
            // gets its outcome computed up front on the pool, sharded
            // with one PODEM engine per worker. Outcomes are pure per
            // fault, so the serial replay below consumes them in target
            // order with identical results.
            let candidates: Vec<u32> = (0..targets.len() as u32)
                .filter(|&i| !resolved[i as usize] && sim.detections()[i as usize] == 0)
                .collect();
            let min_shard = if self.threads_auto { Some(MIN_SHARD_TARGETS) } else { None };
            let workers = lbist_exec::worker_budget(self.threads, candidates.len(), min_shard);
            let mut outcome_of: Vec<Option<AtpgOutcome>> = vec![None; targets.len()];
            if workers > 1 {
                let mut shard_out: Vec<Option<AtpgOutcome>> = vec![None; candidates.len()];
                let cc = self.cc;
                let observed: &[NodeId] = &self.observed;
                // One PODEM engine per worker, built fresh per pass (the
                // backtrack limit changes between passes).
                let mut engines: Vec<Podem> = Vec::new();
                lbist_exec::parallel_chunks_with_scratch(
                    &candidates,
                    &mut shard_out,
                    workers,
                    &mut engines,
                    || {
                        let mut engine = Podem::new(cc, observed.to_vec());
                        engine.set_backtrack_limit(limit);
                        engine
                    },
                    |idx_shard, out_shard, engine| {
                        for (&t, slot) in idx_shard.iter().zip(out_shard.iter_mut()) {
                            *slot = Some(engine.generate(&targets[t as usize]));
                        }
                    },
                );
                for (&t, out) in candidates.iter().zip(shard_out) {
                    outcome_of[t as usize] = out;
                }
            }

            for (idx, fault) in targets.iter().enumerate() {
                // Skip verdicts already reached and faults a previous
                // top-up pattern already caught.
                if resolved[idx] || sim.detections()[idx] > 0 {
                    continue;
                }
                // Precomputed outcome when the parallel pass made one,
                // on-demand generation otherwise (the serial path).
                let outcome = outcome_of[idx].take().unwrap_or_else(|| podem.generate(fault));
                match outcome {
                    AtpgOutcome::Test(mut cube) => {
                        resolved[idx] = true;
                        for &(node, value) in &self.pinned {
                            cube.assign(node, value);
                        }
                        let pattern = cube.fill(self.cc, &mut rng);
                        cubes.push(cube);
                        pending.push(pattern);
                        if pending.len() == 64 {
                            flush(&mut pending, &mut sim, &mut patterns);
                        }
                    }
                    AtpgOutcome::Untestable => {
                        resolved[idx] = true;
                        untestable += 1;
                    }
                    AtpgOutcome::Aborted => {
                        if last {
                            aborted += 1;
                        }
                    }
                }
            }
            flush(&mut pending, &mut sim, &mut patterns);
        }

        TopUpReport {
            patterns,
            cubes,
            faults_detected: sim.detections().iter().filter(|&&d| d > 0).count(),
            untestable,
            aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbist_fault::{FaultKind, FaultUniverse};
    use lbist_netlist::{GateKind, Netlist};
    use rand::Rng;

    /// Random-resistant circuit: several wide ANDs.
    fn resistant() -> Netlist {
        let mut nl = Netlist::new("res");
        let ins: Vec<NodeId> = (0..24).map(|i| nl.add_input(&format!("i{i}"))).collect();
        let g1 = nl.add_gate(GateKind::And, &ins[0..12]);
        let g2 = nl.add_gate(GateKind::Nor, &ins[12..24]);
        let g3 = nl.add_gate(GateKind::Xor, &[g1, g2]);
        nl.add_output("y", g3);
        nl
    }

    #[test]
    fn tops_up_after_random_phase() {
        let nl = resistant();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let universe = FaultUniverse::stuck_at(&nl);
        let mut sim =
            StuckAtSim::new(&cc, universe.representatives(), StuckAtSim::observe_all_captures(&cc));
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..8 {
            let mut frame = cc.new_frame();
            for &pi in cc.inputs() {
                frame[pi.index()] = rng.gen();
            }
            sim.run_batch(&mut frame, 64);
        }
        let fc1 = sim.coverage();
        let survivors = sim.undetected();
        assert!(!survivors.is_empty(), "wide gates must resist 512 random patterns");

        let report = TopUpAtpg::new(&cc, StuckAtSim::observe_all_captures(&cc)).run(&survivors, 11);
        assert_eq!(report.aborted, 0);
        assert_eq!(
            report.faults_detected + report.untestable,
            survivors.len(),
            "every survivor is either covered or proven untestable"
        );
        // Dynamic compaction: far fewer patterns than survivors.
        assert!(report.patterns.len() <= survivors.len());
        // FC2 > FC1 once the top-up patterns are credited.
        let fc2_detected = fc1.detected + report.faults_detected;
        assert!(fc2_detected as f64 / fc1.total as f64 > fc1.fault_coverage());
    }

    #[test]
    fn cubes_align_with_patterns_and_carry_their_care_bits() {
        let nl = resistant();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let universe = FaultUniverse::stuck_at(&nl);
        let report = TopUpAtpg::new(&cc, StuckAtSim::observe_all_captures(&cc))
            .run(&universe.representatives(), 13);
        assert_eq!(report.cubes.len(), report.patterns.len());
        for (cube, pattern) in report.cubes.iter().zip(&report.patterns) {
            assert!(cube.specified() > 0, "a top-up cube specifies at least the excitation");
            // Every care bit survives into the filled pattern.
            for &(node, value) in cube.assignments() {
                let pi_pos = cc.inputs().iter().position(|&n| n == node);
                let ff_pos = cc.dffs().iter().position(|&n| n == node);
                match (pi_pos, ff_pos) {
                    (Some(i), _) => assert_eq!(pattern.pi_values[i], value),
                    (_, Some(i)) => assert_eq!(pattern.ff_values[i], value),
                    _ => panic!("cube assigns a non-assignable node"),
                }
            }
        }
    }

    #[test]
    fn pinned_inputs_respected() {
        let mut nl = Netlist::new("pin");
        let tm = nl.add_input("test_mode");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Xor, &[a, tm]);
        nl.add_output("y", g);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let targets = vec![Fault::stem(a, FaultKind::StuckAt0)];
        let mut atpg = TopUpAtpg::new(&cc, StuckAtSim::observe_all_captures(&cc));
        atpg.pin(tm, true);
        let report = atpg.run(&targets, 5);
        for p in &report.patterns {
            assert!(p.pi_values[0], "test_mode must stay pinned high");
        }
    }

    /// The headline determinism contract of parallel top-up: every
    /// worker budget produces the byte-identical report — same patterns
    /// in the same order, same cubes, same verdict counters.
    #[test]
    fn parallel_and_serial_top_up_reports_are_byte_identical() {
        let nl = resistant();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let universe = FaultUniverse::stuck_at(&nl);
        let targets = universe.representatives();

        let run = |threads: usize| {
            let mut atpg = TopUpAtpg::new(&cc, StuckAtSim::observe_all_captures(&cc));
            if threads == 1 {
                atpg = atpg.serial();
            } else {
                atpg.set_threads(threads);
            }
            // A low limit forces the two-pass abort-rescheduling path.
            atpg.set_backtrack_limit(64);
            atpg.run(&targets, 29)
        };

        let serial = run(1);
        assert!(!serial.patterns.is_empty());
        for threads in [2, 3, 8] {
            let parallel = run(threads);
            assert_eq!(parallel.patterns, serial.patterns, "{threads}-thread patterns differ");
            assert_eq!(parallel.cubes, serial.cubes, "{threads}-thread cubes differ");
            assert_eq!(parallel.faults_detected, serial.faults_detected);
            assert_eq!(parallel.untestable, serial.untestable);
            assert_eq!(parallel.aborted, serial.aborted);
        }
    }

    #[test]
    fn already_detected_targets_are_skipped() {
        // Two equivalent-difficulty faults detectable by one pattern: the
        // second should not need its own PODEM pattern.
        let mut nl = Netlist::new("shared");
        let ins: Vec<NodeId> = (0..8).map(|i| nl.add_input(&format!("i{i}"))).collect();
        let g = nl.add_gate(GateKind::And, &ins);
        let h = nl.add_gate(GateKind::Buf, &[g]);
        nl.add_output("y", h);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let targets =
            vec![Fault::stem(g, FaultKind::StuckAt0), Fault::stem(h, FaultKind::StuckAt0)];
        let report = TopUpAtpg::new(&cc, StuckAtSim::observe_all_captures(&cc)).run(&targets, 3);
        assert_eq!(report.faults_detected, 2);
        // Both faults need the same all-ones cube; the flush-based
        // compaction may or may not fold them into one pattern depending on
        // batch timing, but never more than one per fault.
        assert!(report.patterns.len() <= 2);
    }
}
