//! Combinational ATPG for the paper's **top-up patterns**.
//!
//! Logic BIST leaves a tail of random-pattern-resistant faults. The paper's
//! input selector (Fig. 1) lets deterministic patterns ride the same scan
//! plumbing: Table 1 tops up Core X with 135 patterns (93.82% → 97.12%)
//! and Core Y with 528 (93.22% → 97.58%). This crate generates those
//! patterns:
//!
//! * [`Podem`] — the classic PODEM algorithm (objective → backtrace →
//!   implication → D-frontier/X-path checks, with backtracking) on the
//!   full-scan combinational view: flip-flops are pseudo-primary-inputs,
//!   capture points are pseudo-primary-outputs.
//! * [`TestCube`]/[`Pattern`] — partial cubes and their random-filled
//!   patterns.
//! * [`TopUpAtpg`] — the flow: target every surviving fault, fault-grade
//!   each new pattern against the remaining list (dynamic compaction by
//!   fault dropping), and report the pattern count Table 1 quotes.
//!
//! # Example
//!
//! ```
//! use lbist_netlist::{Netlist, GateKind};
//! use lbist_sim::CompiledCircuit;
//! use lbist_fault::{Fault, FaultKind, StuckAtSim};
//! use lbist_atpg::{AtpgOutcome, Podem};
//!
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g = nl.add_gate(GateKind::And, &[a, b]);
//! nl.add_output("y", g);
//! let cc = CompiledCircuit::compile(&nl).unwrap();
//!
//! let mut podem = Podem::new(&cc, StuckAtSim::observe_all_captures(&cc));
//! match podem.generate(&Fault::stem(g, FaultKind::StuckAt0)) {
//!     AtpgOutcome::Test(cube) => {
//!         // Exciting g/SA0 needs a = b = 1.
//!         assert_eq!(cube.value_of(a), Some(true));
//!         assert_eq!(cube.value_of(b), Some(true));
//!     }
//!     other => panic!("expected a test, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod pattern;
mod podem;
mod topup;
mod values;

pub use compact::{compact_cubes, compacted_count, compatible, cube_of, merge};
pub use pattern::{Pattern, TestCube};
pub use podem::{AtpgOutcome, Podem};
pub use topup::{TopUpAtpg, TopUpReport};
pub use values::eval_logic;
