//! Test cubes and filled patterns.

use lbist_netlist::NodeId;
use lbist_sim::CompiledCircuit;
use rand::Rng;

/// A partial input assignment found by PODEM: values for some primary
/// inputs and pseudo-primary-inputs (flip-flops), everything else
/// don't-care.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TestCube {
    assignments: Vec<(NodeId, bool)>,
}

impl TestCube {
    /// An empty cube.
    pub fn new() -> Self {
        TestCube::default()
    }

    /// Adds or overwrites an assignment.
    pub fn assign(&mut self, node: NodeId, value: bool) {
        if let Some(slot) = self.assignments.iter_mut().find(|(n, _)| *n == node) {
            slot.1 = value;
        } else {
            self.assignments.push((node, value));
        }
    }

    /// The assigned value of a node, if any.
    pub fn value_of(&self, node: NodeId) -> Option<bool> {
        self.assignments.iter().find(|(n, _)| *n == node).map(|&(_, v)| v)
    }

    /// All assignments in insertion order.
    pub fn assignments(&self) -> &[(NodeId, bool)] {
        &self.assignments
    }

    /// Number of specified bits.
    pub fn specified(&self) -> usize {
        self.assignments.len()
    }

    /// `true` when the two cubes agree on every node both specify — the
    /// precondition for sharing one stored pattern or one LFSR seed.
    pub fn compatible(&self, other: &TestCube) -> bool {
        self.assignments.iter().all(|&(n, v)| other.value_of(n).map(|ov| ov == v).unwrap_or(true))
    }

    /// Merges two compatible cubes into one cube carrying the union of
    /// their care bits, or `None` if they conflict on some node.
    pub fn merged(&self, other: &TestCube) -> Option<TestCube> {
        if !self.compatible(other) {
            return None;
        }
        let mut out = self.clone();
        for &(n, v) in other.assignments() {
            out.assign(n, v);
        }
        Some(out)
    }

    /// Random-fills the don't-cares into a full [`Pattern`] over the
    /// circuit's inputs and flip-flops.
    pub fn fill(&self, cc: &CompiledCircuit, rng: &mut impl Rng) -> Pattern {
        let mut p = Pattern {
            pi_values: cc.inputs().iter().map(|_| rng.gen()).collect(),
            ff_values: cc.dffs().iter().map(|_| rng.gen()).collect(),
        };
        for (i, &pi) in cc.inputs().iter().enumerate() {
            if let Some(v) = self.value_of(pi) {
                p.pi_values[i] = v;
            }
        }
        for (i, &ff) in cc.dffs().iter().enumerate() {
            if let Some(v) = self.value_of(ff) {
                p.ff_values[i] = v;
            }
        }
        p
    }
}

/// A fully-specified scan pattern: one bit per primary input and one per
/// flip-flop (the scan-load state), in [`CompiledCircuit::inputs`] /
/// [`CompiledCircuit::dffs`] order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    /// Primary-input values.
    pub pi_values: Vec<bool>,
    /// Flip-flop (scan) values.
    pub ff_values: Vec<bool>,
}

impl Pattern {
    /// Loads this pattern into lane `lane` of a 64-wide frame.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64` or the pattern shape mismatches the circuit.
    pub fn load_into_lane(&self, cc: &CompiledCircuit, frame: &mut [u64], lane: usize) {
        assert!(lane < 64);
        assert_eq!(self.pi_values.len(), cc.inputs().len());
        assert_eq!(self.ff_values.len(), cc.dffs().len());
        let bit = 1u64 << lane;
        for (i, &pi) in cc.inputs().iter().enumerate() {
            if self.pi_values[i] {
                frame[pi.index()] |= bit;
            } else {
                frame[pi.index()] &= !bit;
            }
        }
        for (i, &ff) in cc.dffs().iter().enumerate() {
            if self.ff_values[i] {
                frame[ff.index()] |= bit;
            } else {
                frame[ff.index()] &= !bit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbist_netlist::{DomainId, GateKind, Netlist};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn circuit() -> (Netlist, NodeId, NodeId) {
        let mut nl = Netlist::new("p");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]);
        let q = nl.add_dff(g, DomainId::new(0));
        nl.add_output("y", q);
        (nl, a, q)
    }

    #[test]
    fn cube_assign_and_overwrite() {
        let (_, a, _) = circuit();
        let mut cube = TestCube::new();
        cube.assign(a, true);
        assert_eq!(cube.value_of(a), Some(true));
        cube.assign(a, false);
        assert_eq!(cube.value_of(a), Some(false));
        assert_eq!(cube.specified(), 1);
    }

    #[test]
    fn fill_respects_cube_bits() {
        let (nl, a, q) = circuit();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let mut cube = TestCube::new();
        cube.assign(a, true);
        cube.assign(q, false);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let p = cube.fill(&cc, &mut rng);
            assert!(p.pi_values[0]);
            assert!(!p.ff_values[0]);
        }
    }

    #[test]
    fn load_into_lane_sets_only_that_lane() {
        let (nl, a, _) = circuit();
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let p = Pattern { pi_values: vec![true], ff_values: vec![false] };
        let mut frame = cc.new_frame();
        p.load_into_lane(&cc, &mut frame, 3);
        assert_eq!(frame[a.index()], 1 << 3);
        let p2 = Pattern { pi_values: vec![false], ff_values: vec![true] };
        p2.load_into_lane(&cc, &mut frame, 3);
        assert_eq!(frame[a.index()], 0, "lane 3 overwritten");
    }
}
