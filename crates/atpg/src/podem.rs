//! The PODEM test generation algorithm.

use crate::pattern::TestCube;
use crate::values::{controlling_value, eval_logic, inverts};
use lbist_fault::Fault;
use lbist_netlist::{GateKind, NodeId};
use lbist_sim::{CompiledCircuit, Logic};

/// Outcome of one PODEM run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtpgOutcome {
    /// A test cube detecting the fault.
    Test(TestCube),
    /// The fault is proven untestable (search space exhausted).
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// PODEM: path-oriented decision making on the full-scan combinational
/// view.
///
/// Decisions are made only at primary inputs and flip-flop outputs
/// (pseudo-PIs); objectives are backtraced to them, implications run
/// forward event-driven over a `(good, faulty)` ternary pair per node,
/// and the search backtracks on conflicts (fault not excitable, empty
/// D-frontier, or no X-path to an observed node).
#[derive(Debug)]
pub struct Podem<'a> {
    cc: &'a CompiledCircuit,
    observed: Vec<bool>,
    assignable: Vec<bool>,
    backtrack_limit: usize,
    good: Vec<Logic>,
    faulty: Vec<Logic>,
    /// Undo trail: (node, old good, old faulty).
    trail: Vec<(NodeId, Logic, Logic)>,
    /// The fault currently being targeted (its transform is applied during
    /// node evaluation).
    target: Option<Target>,
    /// Epoch-stamped scratch marks shared by `d_nodes` and the X-path BFS
    /// (avoids per-call allocation in the search's hot loop).
    scratch_stamp: Vec<u32>,
    scratch_epoch: u32,
    /// Per-node hop distance to the nearest observed node (u32::MAX when
    /// unreachable) — guides the D-frontier choice toward the easiest
    /// propagation path.
    obs_distance: Vec<u32>,
}

/// The active fault target.
#[derive(Debug)]
struct Target {
    fault: Fault,
    stuck: bool,
}

impl<'a> Podem<'a> {
    /// Creates a generator observing the given nodes (typically
    /// [`lbist_fault::StuckAtSim::observe_all_captures`]).
    pub fn new(cc: &'a CompiledCircuit, observed: Vec<NodeId>) -> Self {
        let mut obs = vec![false; cc.num_nodes()];
        for o in observed {
            obs[o.index()] = true;
        }
        let mut assignable = vec![false; cc.num_nodes()];
        for &pi in cc.inputs() {
            assignable[pi.index()] = true;
        }
        for &ff in cc.dffs() {
            assignable[ff.index()] = true;
        }
        // Reverse BFS from the observed set over fanin edges gives each
        // node its hop distance to the nearest observation.
        let mut obs_distance = vec![u32::MAX; cc.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        for (i, &o) in obs.iter().enumerate() {
            if o {
                obs_distance[i] = 0;
                queue.push_back(NodeId::from_index(i));
            }
        }
        while let Some(n) = queue.pop_front() {
            let d = obs_distance[n.index()];
            for &f in cc.fanins(n) {
                if obs_distance[f.index()] == u32::MAX {
                    obs_distance[f.index()] = d + 1;
                    queue.push_back(f);
                }
            }
        }
        Podem {
            good: vec![Logic::X; cc.num_nodes()],
            faulty: vec![Logic::X; cc.num_nodes()],
            trail: Vec::new(),
            observed: obs,
            assignable,
            backtrack_limit: 512,
            target: None,
            scratch_stamp: vec![0u32; cc.num_nodes()],
            scratch_epoch: 0,
            obs_distance,
            cc,
        }
    }

    /// Adjusts the backtrack limit (default 512).
    pub fn set_backtrack_limit(&mut self, limit: usize) {
        self.backtrack_limit = limit.max(1);
    }

    /// Attempts to generate a test for `fault`.
    ///
    /// # Panics
    ///
    /// Panics if the fault is not stuck-at.
    pub fn generate(&mut self, fault: &Fault) -> AtpgOutcome {
        assert!(fault.kind.is_stuck_at(), "PODEM targets stuck-at faults");
        self.reset();
        self.install_target(fault);
        // X-sources are zero-bounded in test mode; treat them as constant 0
        // (the bounding AND makes this exact when test_mode=1, which the
        // session guarantees).
        for x in self.cc.xsources().to_vec() {
            self.good[x.index()] = Logic::Zero;
            self.faulty[x.index()] = Logic::Zero;
        }
        // Constants participate in implication from the start.
        for id in self.cc.schedule().to_vec() {
            let k = self.cc.kind(id);
            if matches!(k, GateKind::Const0 | GateKind::Const1) {
                let v = if k == GateKind::Const1 { Logic::One } else { Logic::Zero };
                self.good[id.index()] = v;
                self.faulty[id.index()] = v;
                self.imply_from(id);
            }
        }
        for x in self.cc.xsources().to_vec() {
            self.imply_from(x);
        }
        self.trail.clear(); // initial implications are permanent for this run

        // Decision stack: (pi, value, flipped_already).
        let mut stack: Vec<(NodeId, bool, bool)> = Vec::new();
        let mut trail_marks: Vec<usize> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            // Re-imply everything from scratch cheaply: implication is
            // incremental via the trail, so here we only check status.
            let status = self.status(fault);
            match status {
                Status::Detected => {
                    let mut cube = TestCube::new();
                    for &(pi, v, _) in &stack {
                        cube.assign(pi, v);
                    }
                    return AtpgOutcome::Test(cube);
                }
                Status::Conflict => {
                    // Backtrack.
                    loop {
                        match stack.pop() {
                            None => return AtpgOutcome::Untestable,
                            Some((pi, v, flipped)) => {
                                let mark = trail_marks.pop().expect("marks track stack");
                                self.undo_to(mark);
                                backtracks += 1;
                                if backtracks > self.backtrack_limit {
                                    return AtpgOutcome::Aborted;
                                }
                                if !flipped {
                                    let mark = self.trail.len();
                                    if self.assign(pi, !v) {
                                        stack.push((pi, !v, true));
                                        trail_marks.push(mark);
                                        break;
                                    }
                                    self.undo_to(mark);
                                }
                            }
                        }
                    }
                }
                Status::Undecided => {
                    let Some((obj_node, obj_val)) = self.objective(fault) else {
                        // No objective although undecided: treat as conflict.
                        let mark = trail_marks.last().copied().unwrap_or(0);
                        let _ = mark;
                        // Force the conflict path by popping a decision.
                        if stack.is_empty() {
                            return AtpgOutcome::Untestable;
                        }
                        // Reuse the conflict handling on the next loop turn:
                        // mark the situation by backtracking once here.
                        let (pi, v, flipped) = stack.pop().expect("nonempty");
                        let mark = trail_marks.pop().expect("marks");
                        self.undo_to(mark);
                        backtracks += 1;
                        if backtracks > self.backtrack_limit {
                            return AtpgOutcome::Aborted;
                        }
                        if !flipped {
                            let mark = self.trail.len();
                            if self.assign(pi, !v) {
                                stack.push((pi, !v, true));
                                trail_marks.push(mark);
                            } else {
                                self.undo_to(mark);
                            }
                        }
                        continue;
                    };
                    let Some((pi, pi_val)) = self.backtrace(obj_node, obj_val) else {
                        // Objective unreachable from any free PI: conflict.
                        if stack.is_empty() {
                            return AtpgOutcome::Untestable;
                        }
                        let (pi, v, flipped) = stack.pop().expect("nonempty");
                        let mark = trail_marks.pop().expect("marks");
                        self.undo_to(mark);
                        backtracks += 1;
                        if backtracks > self.backtrack_limit {
                            return AtpgOutcome::Aborted;
                        }
                        if !flipped {
                            let mark = self.trail.len();
                            if self.assign(pi, !v) {
                                stack.push((pi, !v, true));
                                trail_marks.push(mark);
                            } else {
                                self.undo_to(mark);
                            }
                        }
                        continue;
                    };
                    let mark = self.trail.len();
                    if self.assign(pi, pi_val) {
                        stack.push((pi, pi_val, false));
                        trail_marks.push(mark);
                    } else {
                        // Immediate conflict from this assignment: try the
                        // other value as a decision.
                        self.undo_to(mark);
                        let mark = self.trail.len();
                        if self.assign(pi, !pi_val) {
                            stack.push((pi, !pi_val, true));
                            trail_marks.push(mark);
                        } else {
                            self.undo_to(mark);
                            if stack.is_empty() {
                                return AtpgOutcome::Untestable;
                            }
                            backtracks += 1;
                            if backtracks > self.backtrack_limit {
                                return AtpgOutcome::Aborted;
                            }
                            let (pi2, v2, flipped) = stack.pop().expect("nonempty");
                            let mark2 = trail_marks.pop().expect("marks");
                            self.undo_to(mark2);
                            if !flipped {
                                let mark3 = self.trail.len();
                                if self.assign(pi2, !v2) {
                                    stack.push((pi2, !v2, true));
                                    trail_marks.push(mark3);
                                } else {
                                    self.undo_to(mark3);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn reset(&mut self) {
        self.good.fill(Logic::X);
        self.faulty.fill(Logic::X);
        self.trail.clear();
    }

    fn set_value(&mut self, node: NodeId, g: Logic, f: Logic) {
        self.trail.push((node, self.good[node.index()], self.faulty[node.index()]));
        self.good[node.index()] = g;
        self.faulty[node.index()] = f;
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (node, g, f) = self.trail.pop().expect("len checked");
            self.good[node.index()] = g;
            self.faulty[node.index()] = f;
        }
    }

    /// Assigns a PI and runs forward implication. Returns `false` on an
    /// immediate excitation conflict (site good value forced equal to the
    /// stuck value). The caller must `undo_to` its mark on `false`.
    fn assign(&mut self, pi: NodeId, value: bool) -> bool {
        debug_assert!(self.assignable[pi.index()]);
        let v = Logic::from_bool(value);
        self.set_value(pi, v, v);
        self.imply_from(pi)
    }

    /// Event-driven forward implication from `start`. The fault transform
    /// of the current target is applied by [`Podem::generate`]'s status
    /// checks instead of being burned in here; faulty values diverge at
    /// the site via `site_transform`.
    fn imply_from(&mut self, start: NodeId) -> bool {
        let mut queue: Vec<NodeId> = self.cc.fanouts(start).to_vec();
        let mut qi = 0;
        while qi < queue.len() {
            let node = queue[qi];
            qi += 1;
            if self.cc.kind(node) == GateKind::Dff {
                continue;
            }
            let (g, f) = self.eval_node(node);
            if g != self.good[node.index()] || f != self.faulty[node.index()] {
                self.set_value(node, g, f);
                for &succ in self.cc.fanouts(node) {
                    queue.push(succ);
                }
            }
        }
        true
    }

    /// Evaluates a node's (good, faulty) pair, applying the current fault
    /// transform (set in `generate` via `self.target`).
    fn eval_node(&self, node: NodeId) -> (Logic, Logic) {
        let kind = self.cc.kind(node);
        let fi = self.cc.fanins(node);
        let mut gv = Vec::with_capacity(fi.len());
        let mut fv = Vec::with_capacity(fi.len());
        for &f in fi {
            gv.push(self.good[f.index()]);
            fv.push(self.faulty[f.index()]);
        }
        if let Some(t) = &self.target {
            if let (Some(pin), true) = (t.fault.pin, t.fault.node == node) {
                fv[pin as usize] = Logic::from_bool(t.stuck);
            }
        }
        let g = eval_logic(kind, &gv);
        let mut f = eval_logic(kind, &fv);
        if let Some(t) = &self.target {
            if t.fault.pin.is_none() && t.fault.node == node {
                f = Logic::from_bool(t.stuck);
            }
        }
        (g, f)
    }

    /// Nodes that may currently carry a fault effect: everything the trail
    /// touched (values only change through `set_value`) plus the site.
    fn d_nodes(&mut self, site: NodeId) -> Vec<NodeId> {
        self.bump_epoch();
        let epoch = self.scratch_epoch;
        let mut out = Vec::new();
        for &(n, _, _) in &self.trail {
            if self.scratch_stamp[n.index()] != epoch {
                self.scratch_stamp[n.index()] = epoch;
                let (g, f) = (self.good[n.index()], self.faulty[n.index()]);
                if !g.is_x() && !f.is_x() && g != f {
                    out.push(n);
                }
            }
        }
        if self.scratch_stamp[site.index()] != epoch {
            let (g, f) = (self.good[site.index()], self.faulty[site.index()]);
            if !g.is_x() && !f.is_x() && g != f {
                out.push(site);
            }
        }
        out
    }

    fn bump_epoch(&mut self) {
        self.scratch_epoch = self.scratch_epoch.wrapping_add(1);
        if self.scratch_epoch == 0 {
            self.scratch_stamp.fill(0);
            self.scratch_epoch = 1;
        }
    }

    fn status(&mut self, fault: &Fault) -> Status {
        // Ensure the fault transform is installed (stem faults at sources
        // never get re-evaluated, so handle them here).
        let stuck = fault.kind.faulty_value();
        let site = fault.node;
        if fault.pin.is_none() {
            let g = self.good[site.index()];
            if g == Logic::from_bool(stuck) {
                return Status::Conflict; // cannot excite
            }
            // Install faulty value at the stem.
            if self.faulty[site.index()] != Logic::from_bool(stuck) && g != Logic::X {
                self.set_value(site, g, Logic::from_bool(stuck));
                self.imply_from(site);
            }
        }
        // Detection: only changed nodes can carry a D; scan the trail.
        let d_nodes = self.d_nodes(site);
        for &n in &d_nodes {
            if self.observed[n.index()] {
                return Status::Detected;
            }
        }

        // Excitation still open?
        let excitable = if let Some(pin) = fault.pin {
            let src = self.cc.fanins(site)[pin as usize];
            let g = self.good[src.index()];
            if g == Logic::from_bool(stuck) {
                return Status::Conflict;
            }
            true
        } else {
            self.good[site.index()].is_x() || self.good[site.index()] != Logic::from_bool(stuck)
        };
        if !excitable {
            return Status::Conflict;
        }

        // X-path check: one multi-source BFS from every live D node (or
        // the still-unexcited site) toward an observed node.
        let sources = if d_nodes.is_empty() { vec![site] } else { d_nodes };
        if self.x_path_to_observed(&sources) {
            Status::Undecided
        } else {
            Status::Conflict
        }
    }

    /// Multi-source BFS forward through not-yet-blocked logic toward any
    /// observed node.
    fn x_path_to_observed(&mut self, from: &[NodeId]) -> bool {
        self.bump_epoch();
        let epoch = self.scratch_epoch;
        let mut queue = from.to_vec();
        for n in &queue {
            self.scratch_stamp[n.index()] = epoch;
        }
        while let Some(n) = queue.pop() {
            if self.observed[n.index()] {
                return true;
            }
            for &succ in self.cc.fanouts(n) {
                if self.scratch_stamp[succ.index()] == epoch || self.cc.kind(succ) == GateKind::Dff
                {
                    continue;
                }
                // Blocked if the successor's good value is already definite
                // AND its faulty value is definite and equal (no room for a
                // difference to pass).
                let g = self.good[succ.index()];
                let f = self.faulty[succ.index()];
                if !g.is_x() && !f.is_x() && g == f {
                    continue;
                }
                self.scratch_stamp[succ.index()] = epoch;
                queue.push(succ);
            }
        }
        false
    }

    /// PODEM objective: excite first, then extend a D-frontier gate.
    fn objective(&mut self, fault: &Fault) -> Option<(NodeId, bool)> {
        let stuck = fault.kind.faulty_value();
        match fault.pin {
            None => {
                if self.good[fault.node.index()].is_x() {
                    return Some((fault.node, !stuck));
                }
            }
            Some(pin) => {
                let src = self.cc.fanins(fault.node)[pin as usize];
                if self.good[src.index()].is_x() {
                    return Some((src, !stuck));
                }
                // Excited branch fault: the reading gate itself is the
                // initial D-frontier (the divergence lives on its pin, not
                // on any node value). Justify its remaining X inputs with
                // non-controlling values so the divergence shows at the
                // output.
                let gate = fault.node;
                if self.good[gate.index()].is_x() || self.faulty[gate.index()].is_x() {
                    let kind = self.cc.kind(gate);
                    let want = match controlling_value(kind) {
                        Some(cv) => !cv,
                        None => true,
                    };
                    for &f in self.cc.fanins(gate) {
                        if self.good[f.index()].is_x() {
                            return Some((f, want));
                        }
                    }
                }
            }
        }
        // D-frontier: a gate whose output is X but some input carries a D.
        // Only readers of changed (D-carrying) nodes qualify; among the
        // candidates, extend the gate closest to an observed node (the
        // classic distance-to-PO guidance).
        let mut best: Option<(u32, NodeId, bool)> = None;
        for d_node in self.d_nodes(fault.node) {
            for &reader in self.cc.fanouts(d_node) {
                let i = reader.index();
                if !(self.good[i].is_x() || self.faulty[i].is_x()) {
                    continue;
                }
                let kind = self.cc.kind(reader);
                if kind == GateKind::Dff {
                    continue;
                }
                let dist = self.obs_distance[i];
                if let Some((bd, _, _)) = best {
                    if dist >= bd {
                        continue;
                    }
                }
                let mut has_d = false;
                let mut x_input = None;
                for &f in self.cc.fanins(reader) {
                    let (g, fv) = (self.good[f.index()], self.faulty[f.index()]);
                    if !g.is_x() && !fv.is_x() && g != fv {
                        has_d = true;
                    } else if g.is_x() && x_input.is_none() {
                        x_input = Some(f);
                    }
                }
                if has_d {
                    if let Some(xi) = x_input {
                        // Want the non-controlling value on the side input.
                        let want = match controlling_value(kind) {
                            Some(cv) => !cv,
                            None => true, // XOR-family: either value works
                        };
                        best = Some((dist, xi, want));
                    }
                }
            }
        }
        best.map(|(_, n, w)| (n, w))
    }

    /// Backtrace an objective to an unassigned PI, tracking inversions.
    fn backtrace(&self, mut node: NodeId, mut value: bool) -> Option<(NodeId, bool)> {
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > self.cc.num_nodes() + 8 {
                return None;
            }
            if self.assignable[node.index()] {
                if self.good[node.index()].is_x() {
                    return Some((node, value));
                }
                return None; // already assigned: objective unreachable here
            }
            let kind = self.cc.kind(node);
            let fanins = self.cc.fanins(node);
            if fanins.is_empty() {
                return None; // constant/X-source
            }
            let next_value = if inverts(kind) { !value } else { value };
            // Choose an X-valued fanin. Standard PODEM heuristic: when one
            // controlling input suffices, take the easiest (shallowest);
            // when every input must be justified, take the hardest
            // (deepest) so doomed branches fail fast.
            let one_input_suffices = match controlling_value(kind) {
                Some(cv) => {
                    // Output value achieved by a controlling input: cv for
                    // AND/OR (inverted kinds flip the output, which
                    // next_value already accounts for).
                    next_value == cv
                }
                None => false,
            };
            let candidate = match kind {
                GateKind::Mux2 => {
                    let sel = fanins[0];
                    match self.good[sel.index()] {
                        Logic::Zero => Some(fanins[1]),
                        Logic::One => Some(fanins[2]),
                        Logic::X => Some(sel),
                    }
                }
                _ => {
                    let xs = fanins.iter().copied().filter(|f| self.good[f.index()].is_x());
                    if one_input_suffices {
                        xs.min_by_key(|f| self.cc.level(*f))
                    } else {
                        xs.max_by_key(|f| self.cc.level(*f))
                    }
                }
            };
            let next = candidate?;
            // Through a MUX select we aim for 0 (choose input a).
            value = if kind == GateKind::Mux2 && next == fanins[0] {
                false
            } else if kind == GateKind::Mux2 {
                value
            } else {
                next_value
            };
            node = next;
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Status {
    Detected,
    Conflict,
    Undecided,
}

impl<'a> Podem<'a> {
    /// Installs the fault transform used by `eval_node`.
    fn install_target(&mut self, fault: &Fault) {
        self.target = Some(Target { fault: *fault, stuck: fault.kind.faulty_value() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbist_fault::FaultKind;
    use lbist_netlist::{DomainId, Netlist};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn observed(cc: &CompiledCircuit) -> Vec<NodeId> {
        lbist_fault::StuckAtSim::observe_all_captures(cc)
    }

    /// Validate a cube by fault simulation.
    fn cube_detects(cc: &CompiledCircuit, fault: &Fault, cube: &TestCube) -> bool {
        let mut rng = SmallRng::seed_from_u64(9);
        // Try several fills; every fill of a correct cube must detect.
        (0..4).all(|_| {
            let p = cube.fill(cc, &mut rng);
            let mut frame = cc.new_frame();
            p.load_into_lane(cc, &mut frame, 0);
            let mut sim = lbist_fault::StuckAtSim::new(cc, vec![*fault], observed(cc));
            sim.run_batch(&mut frame, 1);
            sim.detections()[0] > 0
        })
    }

    #[test]
    fn generates_tests_for_every_fault_of_a_cone() {
        let mut nl = Netlist::new("cone");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate(GateKind::And, &[a, b]);
        let g2 = nl.add_gate(GateKind::Or, &[g1, c]);
        let g3 = nl.add_gate(GateKind::Xor, &[g2, a]);
        nl.add_output("y", g3);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let universe = lbist_fault::FaultUniverse::stuck_at(&nl);
        for fault in universe.representatives() {
            let mut podem = Podem::new(&cc, observed(&cc));
            match podem.generate(&fault) {
                AtpgOutcome::Test(cube) => {
                    assert!(cube_detects(&cc, &fault, &cube), "cube fails for {fault}");
                }
                other => panic!("{fault}: expected test, got {other:?}"),
            }
        }
    }

    #[test]
    fn proves_untestable_redundant_fault() {
        // y = OR(a, NOT(a)) is constant 1: y/SA1 is undetectable.
        let mut nl = Netlist::new("red");
        let a = nl.add_input("a");
        let na = nl.add_gate(GateKind::Not, &[a]);
        let y = nl.add_gate(GateKind::Or, &[a, na]);
        nl.add_output("o", y);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let mut podem = Podem::new(&cc, observed(&cc));
        let outcome = podem.generate(&Fault::stem(y, FaultKind::StuckAt1));
        assert_eq!(outcome, AtpgOutcome::Untestable);
    }

    #[test]
    fn detects_through_pseudo_outputs() {
        // The only observation is a flip-flop D pin.
        let mut nl = Netlist::new("ff");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Nand, &[a, b]);
        let _ff = nl.add_dff(g, DomainId::new(0));
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let mut podem = Podem::new(&cc, observed(&cc));
        let fault = Fault::stem(g, FaultKind::StuckAt0);
        match podem.generate(&fault) {
            AtpgOutcome::Test(cube) => assert!(cube_detects(&cc, &fault, &cube)),
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn hard_random_fault_is_found_deterministically() {
        // 12-input AND: random patterns almost never excite SA0 at the
        // output; PODEM must find the all-ones cube immediately.
        let mut nl = Netlist::new("wide");
        let ins: Vec<NodeId> = (0..12).map(|i| nl.add_input(&format!("i{i}"))).collect();
        let g = nl.add_gate(GateKind::And, &ins);
        nl.add_output("y", g);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let mut podem = Podem::new(&cc, observed(&cc));
        match podem.generate(&Fault::stem(g, FaultKind::StuckAt0)) {
            AtpgOutcome::Test(cube) => {
                for &i in &ins {
                    assert_eq!(cube.value_of(i), Some(true));
                }
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn branch_faults_get_tests() {
        let mut nl = Netlist::new("br");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Xor, &[a, b]);
        let g2 = nl.add_gate(GateKind::Xor, &[a, g1]);
        nl.add_output("y1", g1);
        nl.add_output("y2", g2);
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let fault = Fault::branch(g2, 0, FaultKind::StuckAt1);
        let mut podem = Podem::new(&cc, observed(&cc));
        match podem.generate(&fault) {
            AtpgOutcome::Test(cube) => assert!(cube_detects(&cc, &fault, &cube)),
            other => panic!("expected test, got {other:?}"),
        }
    }
}
