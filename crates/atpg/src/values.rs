//! Scalar ternary gate evaluation (the good/faulty halves of PODEM's
//! five-valued algebra).

use lbist_netlist::GateKind;
use lbist_sim::Logic;

/// Evaluates one gate over scalar ternary fanin values.
///
/// PODEM tracks a `(good, faulty)` [`Logic`] pair per node; both halves
/// evaluate with this function (the faulty half with the fault site's
/// override applied by the caller). `D` is then `(One, Zero)` and `D̄`
/// `(Zero, One)`.
///
/// # Panics
///
/// Panics if called for a frame-source kind.
///
/// # Example
///
/// ```
/// use lbist_netlist::GateKind;
/// use lbist_sim::Logic;
/// use lbist_atpg::eval_logic;
/// assert_eq!(eval_logic(GateKind::And, &[Logic::One, Logic::X]), Logic::X);
/// assert_eq!(eval_logic(GateKind::And, &[Logic::Zero, Logic::X]), Logic::Zero);
/// ```
pub fn eval_logic(kind: GateKind, fanins: &[Logic]) -> Logic {
    match kind {
        GateKind::Buf | GateKind::Output => fanins[0],
        GateKind::Not => !fanins[0],
        GateKind::And => fanins.iter().fold(Logic::One, |acc, &v| acc & v),
        GateKind::Nand => !fanins.iter().fold(Logic::One, |acc, &v| acc & v),
        GateKind::Or => fanins.iter().fold(Logic::Zero, |acc, &v| acc | v),
        GateKind::Nor => !fanins.iter().fold(Logic::Zero, |acc, &v| acc | v),
        GateKind::Xor => fanins.iter().fold(Logic::Zero, |acc, &v| acc ^ v),
        GateKind::Xnor => !fanins.iter().fold(Logic::Zero, |acc, &v| acc ^ v),
        GateKind::Mux2 => match fanins[0] {
            Logic::Zero => fanins[1],
            Logic::One => fanins[2],
            Logic::X => {
                if fanins[1] == fanins[2] && !fanins[1].is_x() {
                    fanins[1]
                } else {
                    Logic::X
                }
            }
        },
        GateKind::Const0 => Logic::Zero,
        GateKind::Const1 => Logic::One,
        GateKind::Input | GateKind::Dff | GateKind::XSource => {
            unreachable!("frame sources are never evaluated")
        }
    }
}

/// The value that forces an AND/OR-family gate's output regardless of its
/// other inputs, if the kind has one.
pub(crate) fn controlling_value(kind: GateKind) -> Option<bool> {
    match kind {
        GateKind::And | GateKind::Nand => Some(false),
        GateKind::Or | GateKind::Nor => Some(true),
        _ => None,
    }
}

/// Whether the gate inverts (output parity relative to its inputs).
pub(crate) fn inverts(kind: GateKind) -> bool {
    matches!(kind, GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_bitparallel_semantics_on_definite_values() {
        // Cross-check against the 64-wide evaluator for all 2-input
        // definite combinations.
        use lbist_sim::eval_gate;
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for a in [false, true] {
                for b in [false, true] {
                    let scalar = eval_logic(kind, &[Logic::from_bool(a), Logic::from_bool(b)]);
                    let wide =
                        eval_gate(kind, &[if a { !0u64 } else { 0 }, if b { !0u64 } else { 0 }]);
                    assert_eq!(scalar.to_bool(), Some(wide & 1 == 1), "{kind} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn mux_select_x_agreement() {
        assert_eq!(eval_logic(GateKind::Mux2, &[Logic::X, Logic::One, Logic::One]), Logic::One);
        assert_eq!(eval_logic(GateKind::Mux2, &[Logic::X, Logic::One, Logic::Zero]), Logic::X);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(controlling_value(GateKind::And), Some(false));
        assert_eq!(controlling_value(GateKind::Nor), Some(true));
        assert_eq!(controlling_value(GateKind::Xor), None);
    }

    #[test]
    fn inversion_parity() {
        assert!(inverts(GateKind::Nand));
        assert!(!inverts(GateKind::And));
        assert!(inverts(GateKind::Xnor));
    }
}
