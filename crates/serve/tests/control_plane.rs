//! Control-plane semantics: admission, fairness, checkpoint-backed
//! preemption, shedding and the asset cache — all against real graded
//! cores, with digests pinning preempted runs to uninterrupted
//! references.

use lbist_core::{StumpsConfig, WideGradingSession};
use lbist_cores::{CoreProfile, CpuCoreGenerator};
use lbist_dft::{prepare_core, BistReadyCore, PrepConfig, TpiMethod};
use lbist_fault::{Fault, FaultKind, FaultUniverse};
use lbist_netlist::{Netlist, NodeId};
use lbist_serve::{AdmissionPolicy, ControlPlane, Disposition, JobPayload, JobSpec, ServeConfig};
use lbist_sim::CompiledCircuit;

fn small_netlist(seed: u64) -> Netlist {
    CpuCoreGenerator::new(CoreProfile::core_x().scaled(600), seed).generate()
}

fn payload(netlist: &Netlist) -> JobPayload {
    JobPayload { netlist: lbist_ckpt::seal_netlist(netlist), faults: None }
}

/// The same preparation the control plane performs, for building
/// uninterrupted reference runs.
fn prepared(netlist: &Netlist, chains: usize) -> BistReadyCore {
    prepare_core(
        netlist,
        &PrepConfig {
            total_chains: chains,
            obs_budget: 0,
            tpi: TpiMethod::None,
            ..PrepConfig::default()
        },
    )
}

fn reference_stuck_digest(netlist: &Netlist, spec: &JobSpec) -> u64 {
    let core = prepared(netlist, spec.chains);
    let cc = CompiledCircuit::compile(&core.netlist).unwrap();
    let faults = FaultUniverse::stuck_at(&core.netlist).representatives();
    let mut session: WideGradingSession<'_, u64> =
        WideGradingSession::new(&core, &cc, &StumpsConfig::default());
    session.set_drop_after(spec.drop_after);
    session.run_stuck_at(faults, spec.batches as usize).digest()
}

#[test]
fn admission_rejects_bad_jobs_with_reasons() {
    let mut plane = ControlPlane::new(ServeConfig {
        admission: AdmissionPolicy { max_job_cost: 1_000_000, max_queue_depth: 64 },
        ..ServeConfig::default()
    })
    .unwrap();
    let tenant = plane.register_tenant("acme", 1);
    let netlist = small_netlist(11);
    let good = payload(&netlist);

    // Over-budget: cost = gates x batches x lanes blows the 1M budget.
    let id = plane.submit(tenant, JobSpec::stuck_at(1_000_000), &good);
    let v = plane.verdict(id).expect("rejection is an immediate verdict");
    assert_eq!(v.disposition, Disposition::Rejected);
    assert!(v.reason.as_ref().unwrap().contains("exceeds per-job budget"), "{:?}", v.reason);

    // Garbage bytes: fails the envelope, never reaches preparation.
    let id = plane.submit(
        tenant,
        JobSpec::stuck_at(1),
        &JobPayload { netlist: vec![0xAB; 64], faults: None },
    );
    assert_eq!(plane.verdict(id).unwrap().disposition, Disposition::Rejected);

    // Truncated valid payload: checksum catches it.
    let mut torn = good.clone();
    torn.netlist.truncate(torn.netlist.len() / 2);
    let id = plane.submit(tenant, JobSpec::stuck_at(1), &torn);
    assert_eq!(plane.verdict(id).unwrap().disposition, Disposition::Rejected);

    // Bad lane width.
    let id = plane.submit(tenant, JobSpec { lanes: 32, ..JobSpec::stuck_at(1) }, &good);
    let v = plane.verdict(id).unwrap();
    assert_eq!(v.disposition, Disposition::Rejected);
    assert!(v.reason.as_ref().unwrap().contains("lane width"), "{:?}", v.reason);

    // Zero batches.
    let id = plane.submit(tenant, JobSpec::stuck_at(0), &good);
    assert_eq!(plane.verdict(id).unwrap().disposition, Disposition::Rejected);

    // Unknown tenant.
    let ghost = {
        let mut other = ControlPlane::new(ServeConfig::default()).unwrap();
        other.register_tenant("ghost", 1);
        other.register_tenant("ghost2", 1)
    };
    let id = plane.submit(ghost, JobSpec::stuck_at(1), &good);
    assert_eq!(plane.verdict(id).unwrap().disposition, Disposition::Rejected);

    // Out-of-range fault node.
    let rogue = vec![Fault::stem(NodeId::from_index(netlist.len() + 7), FaultKind::StuckAt0)];
    let id = plane.submit(
        tenant,
        JobSpec::stuck_at(1),
        &JobPayload {
            netlist: good.netlist.clone(),
            faults: Some(lbist_ckpt::seal_faults(&rogue)),
        },
    );
    let v = plane.verdict(id).unwrap();
    assert_eq!(v.disposition, Disposition::Rejected);
    assert!(
        v.reason.as_ref().unwrap().contains("out of range")
            || v.reason.as_ref().unwrap().contains("nodes")
    );

    // Model-mismatched fault list: transition faults under stuck-at.
    let wrong = vec![Fault::stem(NodeId::from_index(0), FaultKind::SlowToRise)];
    let id = plane.submit(
        tenant,
        JobSpec::stuck_at(1),
        &JobPayload {
            netlist: good.netlist.clone(),
            faults: Some(lbist_ckpt::seal_faults(&wrong)),
        },
    );
    assert_eq!(plane.verdict(id).unwrap().disposition, Disposition::Rejected);

    let m = plane.metrics();
    assert_eq!(m.submitted, 8);
    assert_eq!(m.rejected, 8);
    assert_eq!(m.accepted, 0);
    // Rejection happens before preparation wherever possible: only the
    // structurally valid submissions cost a cache build.
    assert!(plane.cache_stats().misses <= 2, "{:?}", plane.cache_stats());
}

#[test]
fn preempted_job_resumes_bit_identically() {
    let netlist = small_netlist(12);
    let spec = JobSpec::stuck_at(6);
    let want = reference_stuck_digest(&netlist, &spec);

    let mut plane = ControlPlane::new(ServeConfig {
        slice_batches: 2, // forces 2 preemptions on a 6-batch job
        ..ServeConfig::default()
    })
    .unwrap();
    let tenant = plane.register_tenant("acme", 1);
    let id = plane.submit(tenant, spec, &payload(&netlist));
    plane.run_until_idle();

    let v = plane.verdict(id).expect("job must reach a verdict");
    assert_eq!(v.disposition, Disposition::Completed);
    assert_eq!(v.preemptions, 2, "6 batches in slices of 2 parks twice");
    assert_eq!(v.batches_done, 6);
    assert_eq!(
        v.digest(),
        Some(want),
        "a preempted-and-resumed job must grade bit-identically to an uninterrupted run"
    );
    assert_eq!(plane.metrics().preemptions, 2);
}

#[test]
fn weighted_tenants_split_service_by_weight() {
    let netlist = small_netlist(13);
    let mut plane =
        ControlPlane::new(ServeConfig { slice_batches: 2, ..ServeConfig::default() }).unwrap();
    let light = plane.register_tenant("light", 1);
    let heavy = plane.register_tenant("heavy", 4);
    let light_job = plane.submit(light, JobSpec::stuck_at(8), &payload(&netlist));
    let heavy_job = plane.submit(heavy, JobSpec::stuck_at(8), &payload(&netlist));
    plane.run_until_idle();

    let light_v = plane.verdict(light_job).unwrap();
    let heavy_v = plane.verdict(heavy_job).unwrap();
    assert_eq!(light_v.disposition, Disposition::Completed);
    assert_eq!(heavy_v.disposition, Disposition::Completed);
    // Equal jobs, 4x the weight: the heavy tenant's job must finish
    // first (it receives four slices for each of the light tenant's).
    let heavy_pos = plane.verdicts().iter().position(|v| v.job == heavy_job).unwrap();
    let light_pos = plane.verdicts().iter().position(|v| v.job == light_job).unwrap();
    assert!(
        heavy_pos < light_pos,
        "weight-4 tenant must complete before the weight-1 tenant under contention"
    );
    // Both jobs graded the same design identically regardless of the
    // interleaving.
    assert_eq!(light_v.digest(), heavy_v.digest());
}

#[test]
fn overload_sheds_costliest_job_with_partial_verdict() {
    let netlist = small_netlist(14);
    let mut plane = ControlPlane::new(ServeConfig {
        admission: AdmissionPolicy { max_job_cost: u64::MAX, max_queue_depth: 2 },
        slice_batches: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let tenant = plane.register_tenant("acme", 1);

    let small_a = plane.submit(tenant, JobSpec::stuck_at(2), &payload(&netlist));
    let small_b = plane.submit(tenant, JobSpec::stuck_at(2), &payload(&netlist));
    // The third admit overflows depth 2; this bulky job is the costliest
    // queued (most remaining batches) so it is the victim.
    let bulky = plane.submit(tenant, JobSpec::stuck_at(64), &payload(&netlist));

    let v = plane.verdict(bulky).expect("shed job must still get a verdict");
    assert_eq!(v.disposition, Disposition::Shed);
    assert!(v.reason.as_ref().unwrap().contains("shed under overload"));
    assert!(v.outcome.is_none(), "never ran, so no partial coverage yet");

    plane.run_until_idle();
    assert_eq!(plane.verdict(small_a).unwrap().disposition, Disposition::Completed);
    assert_eq!(plane.verdict(small_b).unwrap().disposition, Disposition::Completed);

    let m = plane.metrics();
    assert_eq!((m.accepted, m.shed, m.completed), (3, 1, 2));
    assert_eq!(m.submitted as usize, plane.verdicts().len(), "no job may vanish");
}

#[test]
fn shed_after_preemption_carries_partial_coverage() {
    let netlist = small_netlist(15);
    let mut plane = ControlPlane::new(ServeConfig {
        admission: AdmissionPolicy { max_job_cost: u64::MAX, max_queue_depth: 1 },
        slice_batches: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let tenant = plane.register_tenant("acme", 1);
    let long_job = plane.submit(tenant, JobSpec::stuck_at(16), &payload(&netlist));

    // Give the long job one slice so it has a parked partial verdict...
    assert!(plane.run_once(), "the long job is queued");
    assert_eq!(plane.metrics().preemptions, 1);
    // ...then overflow the queue: the long job (15 batches remaining vs
    // 2) is the victim, and its verdict must carry the partial coverage.
    let short = plane.submit(tenant, JobSpec::stuck_at(2), &payload(&netlist));

    let v = plane.verdict(long_job).expect("shed long job gets a verdict");
    assert_eq!(v.disposition, Disposition::Shed);
    assert_eq!(v.batches_done, 1);
    let outcome = v.outcome.as_ref().expect("one slice ran: partial coverage exists");
    assert_eq!(outcome.patterns, 64, "one 64-lane batch graded before shedding");

    plane.run_until_idle();
    assert_eq!(plane.verdict(short).unwrap().disposition, Disposition::Completed);
}

#[test]
fn asset_cache_hits_and_evicts_by_lru() {
    let design_a = small_netlist(16);
    let design_b = small_netlist(17);
    let mut plane =
        ControlPlane::new(ServeConfig { cache_capacity: 1, ..ServeConfig::default() }).unwrap();
    let tenant = plane.register_tenant("acme", 1);

    plane.submit(tenant, JobSpec::stuck_at(1), &payload(&design_a));
    plane.submit(tenant, JobSpec::stuck_at(1), &payload(&design_a));
    let s = plane.cache_stats();
    assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));

    plane.submit(tenant, JobSpec::stuck_at(1), &payload(&design_b));
    let s = plane.cache_stats();
    assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 1), "capacity 1 evicts design A");

    // A again: rebuilt, not corrupted by the eviction.
    plane.submit(tenant, JobSpec::stuck_at(1), &payload(&design_a));
    assert_eq!(plane.cache_stats().misses, 3);

    plane.run_until_idle();
    assert_eq!(plane.metrics().completed, 4);
}

#[test]
fn transition_and_custom_fault_jobs_complete() {
    let netlist = small_netlist(18);
    let mut plane = ControlPlane::new(ServeConfig::default()).unwrap();
    let tenant = plane.register_tenant("acme", 1);

    let transition = plane.submit(tenant, JobSpec::transition(2), &payload(&netlist));

    // A custom stuck-at fault list over the submitted netlist's own
    // nodes (preparation preserves their indices).
    let custom: Vec<Fault> =
        FaultUniverse::stuck_at(&netlist).representatives().into_iter().take(50).collect();
    let custom_job = plane.submit(
        tenant,
        JobSpec::stuck_at(2),
        &JobPayload {
            netlist: lbist_ckpt::seal_netlist(&netlist),
            faults: Some(lbist_ckpt::seal_faults(&custom)),
        },
    );
    plane.run_until_idle();

    let tv = plane.verdict(transition).unwrap();
    assert_eq!(tv.disposition, Disposition::Completed, "{:?}", tv.reason);
    assert!(tv.outcome.as_ref().unwrap().coverage.total > 0);

    let cv = plane.verdict(custom_job).unwrap();
    assert_eq!(cv.disposition, Disposition::Completed, "{:?}", cv.reason);
    assert_eq!(
        cv.outcome.as_ref().unwrap().coverage.total,
        custom.len(),
        "the custom list defines the coverage universe"
    );
    // Same design, one preparation: the cache deduplicated the two jobs.
    assert_eq!(plane.cache_stats().misses, 1);
}
