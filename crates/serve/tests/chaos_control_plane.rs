//! Chaos tests for the control plane: worker failures injected through
//! `lbist_exec::chaos` while a mixed multi-tenant workload runs.
//!
//! The invariants pinned here are the tentpole's contract:
//!
//! * **No job is ever lost** — every submission reaches a terminal
//!   disposition, whatever the chaos plan does.
//! * **Recovery is invisible in the data** — a job that completes
//!   (after retries, preemptions, or both) carries the same verdict
//!   digest as an uninterrupted run of the same spec.
//!
//! All sessions run `sequential` (fill/grade overlap off) so every
//! resilient dispatch is issued from this thread, where the thread-local
//! chaos plan is installed; shard execution itself stays parallel.

use lbist_core::{StumpsConfig, WideGradingSession};
use lbist_cores::{CoreProfile, CpuCoreGenerator};
use lbist_dft::{prepare_core, BistReadyCore, PrepConfig, TpiMethod};
use lbist_exec::chaos::{self, ChaosPlan};
use lbist_fault::FaultUniverse;
use lbist_netlist::Netlist;
use lbist_serve::{ControlPlane, Disposition, JobPayload, JobSpec, ServeConfig};
use lbist_sim::CompiledCircuit;
use proptest::prelude::*;

fn small_netlist(seed: u64) -> Netlist {
    CpuCoreGenerator::new(CoreProfile::core_x().scaled(500), seed).generate()
}

fn payload(netlist: &Netlist) -> JobPayload {
    JobPayload { netlist: lbist_ckpt::seal_netlist(netlist), faults: None }
}

fn chaos_config() -> ServeConfig {
    ServeConfig { slice_batches: 2, threads: Some(4), sequential: true, ..ServeConfig::default() }
}

fn prepared(netlist: &Netlist, chains: usize) -> BistReadyCore {
    prepare_core(
        netlist,
        &PrepConfig {
            total_chains: chains,
            obs_budget: 0,
            tpi: TpiMethod::None,
            ..PrepConfig::default()
        },
    )
}

fn reference_stuck_digest(netlist: &Netlist, spec: &JobSpec) -> u64 {
    let core = prepared(netlist, spec.chains);
    let cc = CompiledCircuit::compile(&core.netlist).unwrap();
    let faults = FaultUniverse::stuck_at(&core.netlist).representatives();
    let mut session: WideGradingSession<'_, u64> =
        WideGradingSession::new(&core, &cc, &StumpsConfig::default());
    session.set_drop_after(spec.drop_after);
    session.run_stuck_at(faults, spec.batches as usize).digest()
}

#[test]
fn transient_shard_death_is_retried_to_a_bit_identical_completion() {
    let netlist = small_netlist(31);
    let spec = JobSpec::stuck_at(6);
    let want = reference_stuck_digest(&netlist, &spec);

    let mut plane = ControlPlane::new(chaos_config()).unwrap();
    let tenant = plane.register_tenant("acme", 1);
    let id = plane.submit(tenant, spec, &payload(&netlist));

    // Dispatch 0, shard 0 fails every attempt — pool retries, then the
    // serial degrade — so the first slice dies with a ShardPanic. The
    // dispatch counter has moved past 0 by the retry, so the rule never
    // fires again and the job completes.
    let plan = ChaosPlan::new().panic_on(0, 0, u32::MAX);
    chaos::with_plan(plan, || plane.run_until_idle());

    let v = plane.verdict(id).expect("retried job must reach a verdict");
    assert_eq!(v.disposition, Disposition::Completed, "{:?}", v.reason);
    assert_eq!(v.retries, 1, "exactly one slice died to the injected panic");
    assert_eq!(
        v.digest(),
        Some(want),
        "recovery (retry + preempt/resume) must be invisible in the verdict"
    );
    assert_eq!(plane.metrics().retries, 1);
    assert_eq!(plane.metrics().completed, 1);
}

#[test]
fn persistent_shard_death_fails_terminally_instead_of_looping() {
    let netlist = small_netlist(32);
    let mut plane = ControlPlane::new(chaos_config()).unwrap();
    let tenant = plane.register_tenant("acme", 1);
    let id = plane.submit(tenant, JobSpec::stuck_at(4), &payload(&netlist));

    // Shard 0 of *every* dispatch fails every attempt: each retry dies
    // the same way until the job-level budget runs out.
    let plan = ChaosPlan::new().panic_always(0, u32::MAX);
    chaos::with_plan(plan, || plane.run_until_idle());

    let v = plane.verdict(id).expect("a doomed job still gets a verdict");
    assert_eq!(v.disposition, Disposition::Failed);
    let max_retries = ServeConfig::default().retry.max_retries;
    assert_eq!(v.retries, max_retries + 1, "initial attempt + the full retry budget");
    let reason = v.reason.as_ref().unwrap();
    assert!(reason.contains("gave up"), "{reason}");
    assert!(reason.contains("shard 0"), "the root-cause shard identity survives: {reason}");
    assert_eq!(plane.metrics().failed, 1);
    assert_eq!(plane.queue_depth(), 0, "the plane is idle, not wedged");
}

#[test]
fn checkpointed_state_survives_a_mid_slice_crash() {
    let netlist = small_netlist(33);
    let spec = JobSpec::stuck_at(8);
    let want = reference_stuck_digest(&netlist, &spec);

    let mut plane = ControlPlane::new(chaos_config()).unwrap();
    let tenant = plane.register_tenant("acme", 1);
    let id = plane.submit(tenant, spec, &payload(&netlist));

    // Let the job park once cleanly (2 of 8 batches done)...
    assert!(plane.run_once());
    assert_eq!(plane.metrics().preemptions, 1);

    // ...then kill the *next* slice mid-flight. The final-only
    // checkpoint spec means the dead slice never overwrote the parked
    // state, so the retry resumes from batch 2, not from a torn file.
    let plan = ChaosPlan::new().panic_on(0, 1, u32::MAX);
    chaos::with_plan(plan, || plane.run_until_idle());

    let v = plane.verdict(id).unwrap();
    assert_eq!(v.disposition, Disposition::Completed, "{:?}", v.reason);
    assert_eq!(v.retries, 1);
    assert_eq!(v.batches_done, 8);
    assert_eq!(v.digest(), Some(want), "resume-after-crash must stay bit-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline chaos property: under a randomized chaos plan and a
    /// mixed two-tenant workload, every accepted job reaches a terminal
    /// verdict and every *completed* job's digest equals the
    /// uninterrupted reference for its spec.
    #[test]
    fn mixed_workload_under_chaos_terminates_with_faithful_verdicts(
        gen_seed in 40u64..48,
        batches_a in 1u64..5,
        batches_b in 1u64..5,
        chaos_dispatch in 0u64..6,
        chaos_shard in 0usize..4,
        chaos_attempts in 1u32..6,
        persistent_shard in 0usize..4,
        use_persistent in any::<bool>(),
    ) {
        let netlist = small_netlist(gen_seed);
        let specs =
            [JobSpec::stuck_at(batches_a), JobSpec::stuck_at(batches_b), JobSpec::stuck_at(2)];

        let mut plane = ControlPlane::new(chaos_config()).unwrap();
        let light = plane.register_tenant("light", 1);
        let heavy = plane.register_tenant("heavy", 3);
        let ids = [
            plane.submit(light, specs[0].clone(), &payload(&netlist)),
            plane.submit(heavy, specs[1].clone(), &payload(&netlist)),
            plane.submit(heavy, specs[2].clone(), &payload(&netlist)),
        ];

        let mut plan = ChaosPlan::new().panic_on(chaos_dispatch, chaos_shard, chaos_attempts);
        if use_persistent {
            plan = plan.panic_always(persistent_shard, u32::MAX);
        }
        chaos::with_plan(plan, || plane.run_until_idle());

        // Invariant 1: no job is ever lost.
        let m = plane.metrics();
        prop_assert_eq!(m.submitted, 3);
        prop_assert_eq!(plane.verdicts().len(), 3);
        prop_assert_eq!(m.accepted, m.completed + m.failed + m.shed);
        prop_assert_eq!(plane.queue_depth(), 0);

        // Invariant 2: completion means bit-identical to an
        // uninterrupted run, no matter what recovery happened en route.
        for (id, spec) in ids.iter().zip(&specs) {
            let v = plane.verdict(*id).expect("terminal verdict");
            match v.disposition {
                Disposition::Completed => {
                    prop_assert_eq!(v.batches_done, spec.batches);
                    let want = reference_stuck_digest(&netlist, spec);
                    prop_assert_eq!(v.digest(), Some(want));
                }
                Disposition::Failed => {
                    prop_assert!(v.reason.is_some(), "failures must say why");
                }
                Disposition::Shed | Disposition::Rejected => {
                    prop_assert!(false, "nothing here should be shed or rejected");
                }
            }
        }
    }
}
