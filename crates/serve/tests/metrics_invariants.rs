//! The control plane's metrics contract, promoted from a bench-time
//! assert into library-level invariants:
//!
//! * **balance** — at *every* scheduling step, `submitted = accepted +
//!   rejected` and `accepted = completed + failed + shed + in_flight`
//!   (in-flight = queue depth). No lifecycle path loses a job.
//! * **registry backing** — [`ControlPlane::metrics`] reads the same
//!   cells the plane registers in its registry, so an exported snapshot
//!   (`serve.*`) agrees with the accessor; the `serve.queue_depth`
//!   gauge tracks the live queue; the queue-wait and slice-latency
//!   histograms record one entry per slice served.

use lbist_cores::{CoreProfile, CpuCoreGenerator};
use lbist_netlist::Netlist;
use lbist_obs::Registry;
use lbist_serve::{AdmissionPolicy, ControlPlane, JobPayload, JobSpec, PlaneMetrics, ServeConfig};

fn small_netlist(seed: u64) -> Netlist {
    CpuCoreGenerator::new(CoreProfile::core_x().scaled(600), seed).generate()
}

fn payload(netlist: &Netlist) -> JobPayload {
    JobPayload { netlist: lbist_ckpt::seal_netlist(netlist), faults: None }
}

/// The invariant itself, checked wherever the plane is observable.
fn assert_balanced(m: &PlaneMetrics, in_flight: usize, at: &str) {
    assert_eq!(m.submitted, m.accepted + m.rejected, "submission split must balance {at}");
    assert_eq!(
        m.accepted,
        m.completed + m.failed + m.shed + in_flight as u64,
        "accepted jobs must balance {at}: {m:?}, in_flight {in_flight}"
    );
}

/// A workload that exercises every lifecycle edge — accept, reject,
/// shed, preempt, complete — with the balance checked after every
/// single scheduling step, not just at idle.
#[test]
fn metrics_balance_holds_at_every_scheduling_step() {
    let mut plane = ControlPlane::new(ServeConfig {
        admission: AdmissionPolicy { max_job_cost: 4_000_000_000, max_queue_depth: 3 },
        slice_batches: 1, // forces preemptions on multi-batch jobs
        ..ServeConfig::default()
    })
    .unwrap();
    let tenant = plane.register_tenant("acme", 1);
    let netlist = small_netlist(23);
    let good = payload(&netlist);

    assert_balanced(&plane.metrics(), plane.queue_depth(), "before any submission");

    // Accepted multi-batch jobs (will preempt), one rejection, and one
    // submission over the depth bound (sheds the costliest queued job).
    for batches in [3, 2, 2] {
        plane.submit(tenant, JobSpec::stuck_at(batches), &good);
        assert_balanced(&plane.metrics(), plane.queue_depth(), "after submit");
    }
    plane.submit(tenant, JobSpec::stuck_at(1 << 40), &good); // rejected
    assert_balanced(&plane.metrics(), plane.queue_depth(), "after rejection");
    plane.submit(tenant, JobSpec::stuck_at(8), &good); // triggers shedding
    assert_balanced(&plane.metrics(), plane.queue_depth(), "after shed");
    let m = plane.metrics();
    assert_eq!(m.rejected, 1, "the over-budget job must be rejected");
    assert_eq!(m.shed, 1, "the depth-bound overflow must shed exactly one job");

    // Every individual slice — including mid-run, with preempted jobs
    // parked and in flight — preserves the balance.
    let mut steps = 0;
    while plane.run_once() {
        steps += 1;
        assert_balanced(&plane.metrics(), plane.queue_depth(), "mid-run");
        assert!(steps < 1000, "scheduler failed to drain");
    }
    let m = plane.metrics();
    assert_balanced(&m, plane.queue_depth(), "at idle");
    assert_eq!(plane.queue_depth(), 0);
    assert_eq!(m.submitted as usize, plane.verdicts().len(), "every job reaches a verdict");
    assert!(m.preemptions >= 1, "slice_batches=1 must preempt the multi-batch jobs");
    assert!(steps >= 1);
}

/// `metrics()` and the registry snapshot are two views of the same
/// cells; the gauge and histograms carry the scheduling telemetry.
#[test]
fn metrics_accessor_agrees_with_registry_snapshot() {
    let registry = Registry::new();
    let mut plane = ControlPlane::new(ServeConfig {
        slice_batches: 1,
        registry: Some(registry.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let tenant = plane.register_tenant("acme", 2);
    let netlist = small_netlist(29);
    plane.submit(tenant, JobSpec::stuck_at(2), &payload(&netlist));

    // The supplied registry is the one the accessor exposes, and the
    // queue-depth gauge already tracks the admitted job.
    let snap = plane.registry().snapshot();
    assert_eq!(snap.counter("serve.accepted"), Some(1));
    assert_eq!(snap.gauge("serve.queue_depth"), Some(1));

    plane.run_until_idle();
    let m = plane.metrics();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.submitted"), Some(m.submitted));
    assert_eq!(snap.counter("serve.accepted"), Some(m.accepted));
    assert_eq!(snap.counter("serve.rejected"), Some(m.rejected));
    assert_eq!(snap.counter("serve.shed"), Some(m.shed));
    assert_eq!(snap.counter("serve.completed"), Some(m.completed));
    assert_eq!(snap.counter("serve.failed"), Some(m.failed));
    assert_eq!(snap.counter("serve.preemptions"), Some(m.preemptions));
    assert_eq!(snap.counter("serve.retries"), Some(m.retries));
    assert_eq!(snap.gauge("serve.queue_depth"), Some(0), "idle plane has an empty queue");

    // A 2-batch job under slice_batches=1 takes 2 slices; each slice
    // records one queue wait and one slice latency.
    let slices = 1 + m.preemptions; // final slice + one per preemption
    let waits = snap.histogram("serve.queue_wait_ns").expect("queue-wait histogram");
    let lat = snap.histogram("serve.slice_ns").expect("slice-latency histogram");
    assert_eq!(waits.count, slices, "one queue-wait sample per slice served");
    assert_eq!(lat.count, slices, "one latency sample per slice served");
    assert!(lat.sum > 0, "slices take nonzero time");
}

/// The compiled-kernel program is lowered once per cached design: the
/// first default-fault admission is a `serve.kernel_cache_misses`, every
/// later one on the same design a `serve.kernel_cache_hits`, and the
/// accessor agrees with the registry snapshot.
#[test]
fn kernel_cache_counters_split_by_design() {
    let registry = Registry::new();
    let mut plane = ControlPlane::new(ServeConfig {
        registry: Some(registry.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let tenant = plane.register_tenant("acme", 1);
    let a = small_netlist(37);
    let b = small_netlist(41);

    plane.submit(tenant, JobSpec::stuck_at(1), &payload(&a)); // lowers a's kernel
    plane.submit(tenant, JobSpec::stuck_at(1), &payload(&a)); // reuses it
    plane.submit(tenant, JobSpec::transition(1), &payload(&a)); // same program, both models
    plane.submit(tenant, JobSpec::stuck_at(1), &payload(&b)); // new design, new lowering
    plane.run_until_idle();

    let m = plane.metrics();
    assert_eq!(m.kernel_cache_misses, 2, "one lowering per distinct design");
    assert_eq!(m.kernel_cache_hits, 2, "repeat admissions reuse the cached program");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.kernel_cache_hits"), Some(m.kernel_cache_hits));
    assert_eq!(snap.counter("serve.kernel_cache_misses"), Some(m.kernel_cache_misses));
    assert_eq!(plane.metrics().completed, 4, "kernel-path jobs all complete");
}

/// A plane built without an explicit registry still meters itself (into
/// a private enabled registry), so `metrics()` never silently reads
/// no-op cells.
#[test]
fn default_plane_gets_a_private_enabled_registry() {
    let mut plane = ControlPlane::new(ServeConfig::default()).unwrap();
    let tenant = plane.register_tenant("acme", 1);
    let netlist = small_netlist(31);
    plane.submit(tenant, JobSpec::stuck_at(1), &payload(&netlist));
    plane.run_until_idle();
    let m = plane.metrics();
    assert_eq!(m.submitted, 1);
    assert_eq!(m.completed, 1);
    assert!(plane.registry().is_enabled());
}
