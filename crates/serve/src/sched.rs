//! The control plane proper: admission, weighted fair scheduling,
//! checkpoint-backed preemption, retry and shedding.
//!
//! # Scheduling model
//!
//! Tenants are stride-scheduled: each carries a `pass` counter that
//! advances by `slice · SCALE / weight` whenever one of its jobs
//! receives a slice, and the runnable tenant with the lowest pass is
//! always served next. A weight-4 tenant therefore receives four
//! slices for every one a weight-1 tenant gets, without starving
//! anyone — every tenant's pass eventually becomes the minimum.
//!
//! # Preemption
//!
//! A slice is a *controlled* grading run with `budget = slice` batches
//! and a final-only checkpoint spec (`every = 0`). The budget check
//! sits at the top of the engine's batch loop, so a preempted job
//! parks at an exact batch boundary; the checkpoint is written once,
//! on controlled exit. A slice that dies mid-batch to a shard panic
//! never reaches that write, so the previously parked state survives
//! intact and a retry resumes from the last good boundary — or from
//! scratch if the job never completed a slice. Determinism of the
//! grading engine makes either path bit-identical to an uninterrupted
//! run, which [`crate::JobVerdict::digest`] lets callers verify.

use crate::cache::{AssetCache, CacheStats, JobAssets};
use crate::job::{Disposition, JobId, JobPayload, JobSpec, JobVerdict, TenantId};
use lbist_ckpt::CkptError;
use lbist_core::{
    CheckpointSpec, ControlledGradingOutcome, ModelTag, RunControl, RunStatus, StumpsConfig,
    WideGradingOutcome, WideGradingSession,
};
use lbist_exec::{retry_backoff, LaneWord, RetryPolicy, ShardPanic};
use lbist_fault::{CaptureWindow, Fault};
use lbist_netlist::Netlist;
use lbist_obs::{Counter, Gauge, Histogram, Registry};
use lbist_sim::KernelProgram;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Stride-scheduling pass resolution: `SCALE / weight` must stay
/// meaningfully distinct across reasonable weights.
const STRIDE_SCALE: u64 = 1 << 20;

/// Distinguishes concurrently live control planes (and test processes)
/// sharing one temp directory.
static SPOOL_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// What the admission gate enforces before a job may queue.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// Reject any job whose estimated cost — submitted gate count ×
    /// batch target × lane count — exceeds this.
    pub max_job_cost: u64,
    /// Queue depth bound: admitting a job beyond this sheds the
    /// costliest queued job (by remaining work) with a partial verdict.
    pub max_queue_depth: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy { max_job_cost: u64::MAX, max_queue_depth: 64 }
    }
}

/// Control-plane configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission gate.
    pub admission: AdmissionPolicy,
    /// Batches a job may grade per scheduling slice before it is
    /// preempted and parked (minimum 1).
    pub slice_batches: u64,
    /// Prepared-design cache capacity (entries; minimum 1).
    pub cache_capacity: usize,
    /// Directory for parked-job checkpoints. `None` creates a fresh
    /// per-instance directory under the system temp dir and removes it
    /// when the plane drops.
    pub spool_dir: Option<PathBuf>,
    /// Job-level retry policy for slices killed by shard panics:
    /// `max_retries` bounds attempts, `backoff` seeds the exponential,
    /// deterministically jittered delay ([`lbist_exec::retry_backoff`]).
    pub retry: RetryPolicy,
    /// Grading worker budget forwarded to every session (`None` uses
    /// the engine default).
    pub threads: Option<usize>,
    /// Disable the fill/grade pipeline overlap so every shard dispatch
    /// is issued from the scheduler's thread. Required under
    /// `lbist_exec::chaos` plans (the plan is thread-local); results
    /// are bit-identical either way.
    pub sequential: bool,
    /// Metrics registry the plane registers its `serve.*` counters in.
    /// `None` creates a private enabled registry, so
    /// [`ControlPlane::metrics`] is exact per plane; supplying a shared
    /// registry (e.g. [`lbist_obs::global`]) aggregates across planes
    /// that share it.
    pub registry: Option<Registry>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            admission: AdmissionPolicy::default(),
            slice_batches: 4,
            cache_capacity: 4,
            spool_dir: None,
            retry: RetryPolicy::default(),
            threads: None,
            sequential: false,
            registry: None,
        }
    }
}

/// Scheduler-wide counters, read out of the plane's metrics registry.
/// `submitted = accepted + rejected`, and every accepted job ends in
/// exactly one of `completed`, `failed` or `shed` — until then it
/// counts toward [`ControlPlane::queue_depth`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneMetrics {
    /// Jobs ever submitted.
    pub submitted: u64,
    /// Jobs past admission.
    pub accepted: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
    /// Accepted jobs evicted by overload shedding.
    pub shed: u64,
    /// Accepted jobs that reached their full batch target.
    pub completed: u64,
    /// Accepted jobs that exhausted retries or hit checkpoint I/O
    /// errors.
    pub failed: u64,
    /// Preempt-and-park events across all jobs.
    pub preemptions: u64,
    /// Slice retries after shard panics across all jobs.
    pub retries: u64,
    /// Default-fault admissions that reused a cached compiled kernel
    /// program.
    pub kernel_cache_hits: u64,
    /// Default-fault admissions that lowered the design's kernel
    /// program for the first time.
    pub kernel_cache_misses: u64,
}

/// The plane's live handles into its registry: lifecycle counters
/// (`serve.submitted` …), the queue-depth gauge, and the queue-wait /
/// slice-latency histograms. Timing lands only in telemetry — verdicts,
/// digests and checkpoints never read these.
struct PlaneCounters {
    submitted: Counter,
    accepted: Counter,
    rejected: Counter,
    shed: Counter,
    completed: Counter,
    failed: Counter,
    preemptions: Counter,
    retries: Counter,
    kernel_cache_hits: Counter,
    kernel_cache_misses: Counter,
    queue_depth: Gauge,
    queue_wait_ns: Histogram,
    slice_ns: Histogram,
}

impl PlaneCounters {
    fn register(registry: &Registry) -> Self {
        PlaneCounters {
            submitted: registry.counter("serve.submitted"),
            accepted: registry.counter("serve.accepted"),
            rejected: registry.counter("serve.rejected"),
            shed: registry.counter("serve.shed"),
            completed: registry.counter("serve.completed"),
            failed: registry.counter("serve.failed"),
            preemptions: registry.counter("serve.preemptions"),
            retries: registry.counter("serve.retries"),
            kernel_cache_hits: registry.counter("serve.kernel_cache_hits"),
            kernel_cache_misses: registry.counter("serve.kernel_cache_misses"),
            queue_depth: registry.gauge("serve.queue_depth"),
            queue_wait_ns: registry.histogram("serve.queue_wait_ns"),
            slice_ns: registry.histogram("serve.slice_ns"),
        }
    }
}

struct Tenant {
    #[allow(dead_code)]
    name: String,
    weight: u64,
    pass: u64,
}

struct QueuedJob {
    id: JobId,
    tenant: TenantId,
    spec: JobSpec,
    assets: Arc<JobAssets>,
    faults: Arc<Vec<Fault>>,
    /// The compiled simulation program every slice of this job replays:
    /// the design's cached kernel for default-fault jobs, a job-private
    /// lowering for custom fault lists.
    kernel: Arc<KernelProgram>,
    gates: u64,
    batches_done: u64,
    preemptions: u32,
    retries: u32,
    partial: Option<WideGradingOutcome>,
    submitted: Instant,
    /// When the job last entered the queue (set at admission, reset on
    /// every preempt/retry re-queue) — the `serve.queue_wait_ns` clock.
    enqueued: Instant,
    ckpt: PathBuf,
    has_ckpt: bool,
}

/// What admission hands the queue for an accepted job.
struct Admitted {
    assets: Arc<JobAssets>,
    faults: Arc<Vec<Fault>>,
    kernel: Arc<KernelProgram>,
    gates: u64,
}

impl QueuedJob {
    /// Work still owed to this job, in the admission cost unit — the
    /// shedding victim metric.
    fn remaining_cost(&self) -> u64 {
        self.gates
            .saturating_mul(self.spec.batches.saturating_sub(self.batches_done))
            .saturating_mul(self.spec.lanes as u64)
    }
}

/// The in-process multi-tenant job scheduler over the grading engine.
///
/// Lifecycle: [`register_tenant`](ControlPlane::register_tenant), then
/// any interleaving of [`submit`](ControlPlane::submit) and
/// [`run_until_idle`](ControlPlane::run_until_idle); finished jobs
/// accumulate in [`verdicts`](ControlPlane::verdicts). Every submitted
/// job reaches exactly one terminal [`Disposition`].
pub struct ControlPlane {
    cfg: ServeConfig,
    tenants: Vec<Tenant>,
    queue: Vec<QueuedJob>,
    verdicts: Vec<JobVerdict>,
    cache: AssetCache,
    registry: Registry,
    counters: PlaneCounters,
    next_job: JobId,
    spool: PathBuf,
    owns_spool: bool,
}

impl ControlPlane {
    /// Builds a control plane, creating the checkpoint spool directory.
    pub fn new(cfg: ServeConfig) -> Result<Self, CkptError> {
        let (spool, owns_spool) = match cfg.spool_dir.clone() {
            Some(dir) => (dir, false),
            None => {
                let instance = SPOOL_INSTANCE.fetch_add(1, Ordering::Relaxed);
                let dir = std::env::temp_dir()
                    .join(format!("lbist-serve-{}-{instance}", std::process::id()));
                (dir, true)
            }
        };
        std::fs::create_dir_all(&spool).map_err(CkptError::Io)?;
        let cache = AssetCache::new(cfg.cache_capacity);
        let registry = cfg.registry.clone().unwrap_or_default();
        let counters = PlaneCounters::register(&registry);
        Ok(ControlPlane {
            cfg,
            tenants: Vec::new(),
            queue: Vec::new(),
            verdicts: Vec::new(),
            cache,
            registry,
            counters,
            next_job: 0,
            spool,
            owns_spool,
        })
    }

    /// Registers a tenant with a scheduling `weight` (clamped to ≥ 1):
    /// a weight-4 tenant receives 4× the slices of a weight-1 tenant
    /// under contention. A tenant registered late starts at the current
    /// minimum pass, so it cannot retroactively claim service.
    pub fn register_tenant(&mut self, name: &str, weight: u64) -> TenantId {
        let pass = self.tenants.iter().map(|t| t.pass).min().unwrap_or(0);
        self.tenants.push(Tenant { name: name.to_string(), weight: weight.max(1), pass });
        TenantId(self.tenants.len() - 1)
    }

    /// Submits a job. Always returns the job's id; whether it was
    /// accepted is visible in [`metrics`](ControlPlane::metrics) and —
    /// for rejections — as an immediate [`Disposition::Rejected`]
    /// verdict. Admitting a job over the queue-depth bound sheds the
    /// costliest queued job (never the rejection of the newcomer:
    /// admission is cost-based, shedding is load-based).
    pub fn submit(&mut self, tenant: TenantId, spec: JobSpec, payload: &JobPayload) -> JobId {
        let id = self.next_job;
        self.next_job += 1;
        self.counters.submitted.inc();
        let submitted = Instant::now();
        match self.admit(tenant, &spec, payload) {
            Ok(Admitted { assets, faults, kernel, gates }) => {
                self.counters.accepted.inc();
                let ckpt = self.spool.join(format!("job-{id}.ckpt"));
                self.queue.push(QueuedJob {
                    id,
                    tenant,
                    spec,
                    assets,
                    faults,
                    kernel,
                    gates,
                    batches_done: 0,
                    preemptions: 0,
                    retries: 0,
                    partial: None,
                    submitted,
                    enqueued: submitted,
                    ckpt,
                    has_ckpt: false,
                });
                self.shed_overflow();
                self.sync_queue_gauge();
            }
            Err(reason) => {
                self.counters.rejected.inc();
                self.verdicts.push(JobVerdict {
                    job: id,
                    tenant,
                    disposition: Disposition::Rejected,
                    outcome: None,
                    batches_done: 0,
                    preemptions: 0,
                    retries: 0,
                    reason: Some(reason),
                    latency: submitted.elapsed(),
                });
            }
        }
        id
    }

    /// Runs at most one scheduling slice (the fairest eligible job's
    /// next quantum). Returns `false` when nothing is queued — useful
    /// for interleaving submissions with service.
    pub fn run_once(&mut self) -> bool {
        match self.pick_next() {
            Some(idx) => {
                self.run_slice(idx);
                true
            }
            None => false,
        }
    }

    /// Runs slices until no job is queued. Fairness, preemption, retry
    /// and shedding all play out inside; afterwards every accepted job
    /// has a terminal verdict.
    pub fn run_until_idle(&mut self) {
        while self.run_once() {}
    }

    /// Terminal verdicts in completion order.
    pub fn verdicts(&self) -> &[JobVerdict] {
        &self.verdicts
    }

    /// The verdict for `job`, if it has reached one.
    pub fn verdict(&self, job: JobId) -> Option<&JobVerdict> {
        self.verdicts.iter().find(|v| v.job == job)
    }

    /// Scheduler-wide counters, read back out of the plane's registry.
    /// Exact for a plane with a private registry (the default); with a
    /// shared [`ServeConfig::registry`] the values aggregate every
    /// plane registered against it.
    pub fn metrics(&self) -> PlaneMetrics {
        PlaneMetrics {
            submitted: self.counters.submitted.value(),
            accepted: self.counters.accepted.value(),
            rejected: self.counters.rejected.value(),
            shed: self.counters.shed.value(),
            completed: self.counters.completed.value(),
            failed: self.counters.failed.value(),
            preemptions: self.counters.preemptions.value(),
            retries: self.counters.retries.value(),
            kernel_cache_hits: self.counters.kernel_cache_hits.value(),
            kernel_cache_misses: self.counters.kernel_cache_misses.value(),
        }
    }

    /// The registry holding this plane's `serve.*` metrics — snapshot
    /// it (`registry().snapshot()`) to export queue-wait and
    /// slice-latency histograms alongside the lifecycle counters.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Prepared-design cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Jobs currently queued (admitted, not yet terminal).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    fn admit(
        &mut self,
        tenant: TenantId,
        spec: &JobSpec,
        payload: &JobPayload,
    ) -> Result<Admitted, String> {
        if tenant.0 >= self.tenants.len() {
            return Err(format!("unknown tenant {}", tenant.0));
        }
        if !matches!(spec.lanes, 64 | 128 | 256) {
            return Err(format!("unsupported lane width {} (want 64, 128 or 256)", spec.lanes));
        }
        if spec.batches == 0 {
            return Err("zero-batch job".to_string());
        }
        let netlist =
            lbist_ckpt::open_netlist(&payload.netlist).map_err(|e| format!("bad netlist: {e}"))?;
        let fingerprint = lbist_ckpt::netlist_fingerprint(&netlist);
        let gates = netlist.gate_count().max(1) as u64;
        let cost = gates.saturating_mul(spec.batches).saturating_mul(spec.lanes as u64);
        if cost > self.cfg.admission.max_job_cost {
            return Err(format!(
                "cost {cost} (gates {gates} x batches {} x lanes {}) exceeds per-job budget {}",
                spec.batches, spec.lanes, self.cfg.admission.max_job_cost
            ));
        }
        let assets = self.cache.get_or_build(fingerprint, spec.chains, &netlist)?;
        let (faults, custom) = match &payload.faults {
            Some(bytes) => {
                let faults =
                    lbist_ckpt::open_faults(bytes).map_err(|e| format!("bad fault list: {e}"))?;
                validate_faults(&faults, &netlist, spec.model)?;
                (Arc::new(faults), true)
            }
            None => (assets.default_faults(spec.model), false),
        };
        if faults.is_empty() {
            return Err("empty fault list".to_string());
        }
        let kernel = if custom {
            // Custom fault lists get a job-private lowering whose keep
            // set covers exactly this job's sites; slices replay it
            // without re-lowering.
            let observed = lbist_fault::StuckAtSim::observe_all_captures(&assets.cc);
            let keep = lbist_fault::grading_keep_set(&assets.cc, &[faults.as_slice()], &observed);
            Arc::new(KernelProgram::lower(&assets.cc, &keep))
        } else {
            // Default-fault jobs share one program per cached design.
            if assets.kernel_ready() {
                self.counters.kernel_cache_hits.inc();
            } else {
                self.counters.kernel_cache_misses.inc();
            }
            assets.kernel_program()
        };
        Ok(Admitted { assets, faults, kernel, gates })
    }

    /// Sheds until the queue depth bound holds: victim = largest
    /// remaining work, ties to the newest job. The victim's verdict
    /// carries its last preemption-point partial coverage — a shed job
    /// is *answered*, never dropped.
    fn shed_overflow(&mut self) {
        while self.queue.len() > self.cfg.admission.max_queue_depth {
            let idx = self
                .queue
                .iter()
                .enumerate()
                .max_by_key(|(_, j)| (j.remaining_cost(), j.id))
                .map(|(i, _)| i)
                .expect("queue over bound is non-empty");
            let job = self.queue.swap_remove(idx);
            self.counters.shed.inc();
            let reason = format!(
                "shed under overload: queue depth exceeded {}",
                self.cfg.admission.max_queue_depth
            );
            let outcome = job.partial.clone();
            self.finish(job, Disposition::Shed, outcome, Some(reason));
        }
    }

    /// The queue index to serve next: the runnable tenant with the
    /// lowest pass (ties to the lower tenant index), then that tenant's
    /// earliest-submitted job.
    fn pick_next(&self) -> Option<usize> {
        let tenant =
            self.queue.iter().map(|j| j.tenant.0).min_by_key(|&t| (self.tenants[t].pass, t))?;
        self.queue
            .iter()
            .enumerate()
            .filter(|(_, j)| j.tenant.0 == tenant)
            .min_by_key(|(_, j)| j.id)
            .map(|(i, _)| i)
    }

    fn sync_queue_gauge(&self) {
        self.counters.queue_depth.set(self.queue.len() as i64);
    }

    fn run_slice(&mut self, idx: usize) {
        let mut job = self.queue.swap_remove(idx);
        self.counters.queue_wait_ns.record(saturating_ns(job.enqueued.elapsed()));
        let slice = self
            .cfg
            .slice_batches
            .max(1)
            .min(job.spec.batches.saturating_sub(job.batches_done))
            .max(1);
        let control = RunControl {
            cancel: None,
            budget: Some(slice),
            // `every = 0`: the checkpoint is written once, on controlled
            // exit. A slice that panics mid-batch never reaches that
            // write, so the previously parked state stays consistent.
            checkpoint: Some(CheckpointSpec::new(job.ckpt.clone(), 0)),
            resume: job.has_ckpt,
        };
        // The pass advances whether the slice survives or not: a tenant
        // whose jobs keep dying still consumed its turn.
        self.charge(job.tenant, slice);

        let caught = {
            let _slice_span = self.counters.slice_ns.start();
            panic::catch_unwind(AssertUnwindSafe(|| {
                run_controlled_slice(&job, &control, &self.cfg)
            }))
        };
        match caught {
            Ok(Ok(res)) => {
                job.batches_done = res.batches_done;
                match res.status {
                    RunStatus::Completed => {
                        self.counters.completed.inc();
                        self.finish(job, Disposition::Completed, Some(res.outcome), None);
                    }
                    RunStatus::BudgetExhausted => {
                        job.partial = Some(res.outcome);
                        job.has_ckpt = true;
                        job.preemptions += 1;
                        self.counters.preemptions.inc();
                        job.enqueued = Instant::now();
                        self.queue.push(job);
                    }
                    RunStatus::Cancelled(reason) => {
                        // The plane never arms a cancel token; reaching
                        // here means an external token was smuggled in.
                        self.counters.failed.inc();
                        self.finish(
                            job,
                            Disposition::Failed,
                            Some(res.outcome),
                            Some(format!("cancelled: {reason:?}")),
                        );
                    }
                }
            }
            Ok(Err(e)) => {
                self.counters.failed.inc();
                let outcome = job.partial.clone();
                self.finish(
                    job,
                    Disposition::Failed,
                    outcome,
                    Some(format!("checkpoint error: {e}")),
                );
            }
            Err(payload) => {
                job.retries += 1;
                self.counters.retries.inc();
                let reason = describe_panic(payload.as_ref());
                if job.retries > self.cfg.retry.max_retries {
                    self.counters.failed.inc();
                    let attempts = job.retries;
                    let outcome = job.partial.clone();
                    self.finish(
                        job,
                        Disposition::Failed,
                        outcome,
                        Some(format!("gave up after {attempts} attempts: {reason}")),
                    );
                } else {
                    let delay = retry_backoff(&self.cfg.retry, job.retries - 1, job.id as usize);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    job.enqueued = Instant::now();
                    self.queue.push(job);
                }
            }
        }
        self.sync_queue_gauge();
    }

    fn charge(&mut self, tenant: TenantId, slice: u64) {
        let t = &mut self.tenants[tenant.0];
        t.pass = t.pass.saturating_add(slice.saturating_mul(STRIDE_SCALE) / t.weight);
    }

    fn finish(
        &mut self,
        job: QueuedJob,
        disposition: Disposition,
        outcome: Option<WideGradingOutcome>,
        reason: Option<String>,
    ) {
        if job.has_ckpt {
            // Best-effort: a stale spool file cannot corrupt anything
            // (resume is fingerprint-bound and per-job-path).
            let _ = std::fs::remove_file(&job.ckpt);
        }
        self.verdicts.push(JobVerdict {
            job: job.id,
            tenant: job.tenant,
            disposition,
            outcome,
            batches_done: job.batches_done,
            preemptions: job.preemptions,
            retries: job.retries,
            reason,
            latency: job.submitted.elapsed(),
        });
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        if self.owns_spool {
            let _ = std::fs::remove_dir_all(&self.spool);
        }
    }
}

/// Everything the grading sims would `assert!` on is screened here
/// instead, so a hostile fault list costs a rejection, not a retry
/// cascade: node indices must be in range for the *submitted* netlist
/// (preparation appends nodes, never renumbers), and kinds must match
/// the model — transition grading is additionally stem-based.
fn validate_faults(faults: &[Fault], netlist: &Netlist, model: ModelTag) -> Result<(), String> {
    for (i, f) in faults.iter().enumerate() {
        if f.node.index() >= netlist.len() {
            return Err(format!(
                "fault {i} names node {} but the netlist has {} nodes",
                f.node.index(),
                netlist.len()
            ));
        }
        let compatible = match model {
            ModelTag::StuckAt => f.kind.is_stuck_at(),
            ModelTag::Transition => f.kind.is_transition() && f.is_stem(),
        };
        if !compatible {
            return Err(format!("fault {i} ({:?}) does not fit the {model:?} model", f.kind));
        }
    }
    Ok(())
}

fn run_controlled_slice(
    job: &QueuedJob,
    control: &RunControl,
    cfg: &ServeConfig,
) -> Result<ControlledGradingOutcome, CkptError> {
    match job.spec.lanes {
        64 => run_controlled::<u64>(job, control, cfg),
        128 => run_controlled::<u128>(job, control, cfg),
        _ => run_controlled::<[u64; 4]>(job, control, cfg),
    }
}

fn run_controlled<W: LaneWord>(
    job: &QueuedJob,
    control: &RunControl,
    cfg: &ServeConfig,
) -> Result<ControlledGradingOutcome, CkptError> {
    let assets = &job.assets;
    let mut session: WideGradingSession<'_, W> =
        WideGradingSession::new(&assets.core, &assets.cc, &StumpsConfig::default());
    if let Some(n) = cfg.threads {
        session.set_threads(n);
    }
    if cfg.sequential {
        session.sequential();
    }
    session.set_kernel_program(job.kernel.clone());
    session.set_drop_after(job.spec.drop_after);
    let faults = job.faults.as_ref().clone();
    let batches = job.spec.batches as usize;
    match job.spec.model {
        ModelTag::StuckAt => session.run_stuck_at_controlled(faults, batches, control),
        ModelTag::Transition => {
            let window = CaptureWindow::all_domains(assets.core.netlist.num_domains().max(1));
            session.run_transition_controlled(faults, window, batches, control)
        }
    }
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(sp) = payload.downcast_ref::<ShardPanic>() {
        return format!(
            "shard {} died after {} attempts: {}",
            sp.shard,
            sp.attempts,
            sp.message().unwrap_or("non-string payload")
        );
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return format!("slice panicked: {s}");
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return format!("slice panicked: {s}");
    }
    "slice panicked with an opaque payload".to_string()
}
