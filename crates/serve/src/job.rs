//! The job vocabulary: what a tenant submits and what it gets back.

use lbist_core::{ModelTag, WideGradingOutcome};
use std::time::Duration;

/// Identifies one submitted job within a [`crate::ControlPlane`].
/// Allocated densely in submission order, never reused.
pub type JobId = u64;

/// Identifies one registered tenant within a [`crate::ControlPlane`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) usize);

impl TenantId {
    /// The tenant's dense registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a job should compute: the fault model and the shape of the
/// grading run. Everything the scheduler needs to cost, slice and
/// replay the job deterministically lives here — two jobs with equal
/// specs over equal payloads produce bit-identical verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Fault model to grade under.
    pub model: ModelTag,
    /// Total batches to grade (`batches · lanes` patterns).
    pub batches: u64,
    /// Lanes per pass: 64, 128 or 256. Anything else is rejected at
    /// admission.
    pub lanes: usize,
    /// Scan chains to stitch when preparing the submitted netlist.
    pub chains: usize,
    /// n-detect drop budget forwarded to the grading session
    /// (`u32::MAX` disables dropping).
    pub drop_after: u32,
}

impl JobSpec {
    /// A stuck-at spec with the workspace's customary defaults: 64
    /// lanes, 4 chains, drop-after-1.
    pub fn stuck_at(batches: u64) -> Self {
        JobSpec { model: ModelTag::StuckAt, batches, lanes: 64, chains: 4, drop_after: 1 }
    }

    /// A transition-model spec with the same defaults as
    /// [`JobSpec::stuck_at`].
    pub fn transition(batches: u64) -> Self {
        JobSpec { model: ModelTag::Transition, ..JobSpec::stuck_at(batches) }
    }
}

/// The serialized design a job runs against. The control plane trusts
/// nothing here: both byte strings pass through the `lbist-ckpt`
/// envelope (magic, version, kind tag, checksum) and the structural
/// netlist decoder before any cycles are spent on them.
#[derive(Clone, Debug)]
pub struct JobPayload {
    /// A netlist sealed with [`lbist_ckpt::seal_netlist`].
    pub netlist: Vec<u8>,
    /// Optional explicit fault list sealed with
    /// [`lbist_ckpt::seal_faults`]; node indices refer to the submitted
    /// netlist. `None` grades the collapsed representative universe of
    /// the prepared core (the workspace's benchmark convention).
    pub faults: Option<Vec<u8>>,
}

/// How a job's life ended. Every submitted job reaches exactly one of
/// these — the control plane never drops a job on the floor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Ran to its full batch target.
    Completed,
    /// Evicted by overload shedding; the verdict carries whatever
    /// partial coverage the job had accumulated before eviction.
    Shed,
    /// Gave up: the retry budget ran out on a persistent shard failure,
    /// or checkpoint I/O failed.
    Failed,
    /// Never admitted: malformed payload, over-budget cost, bad spec,
    /// or unknown tenant.
    Rejected,
}

/// The terminal record of one job.
#[derive(Clone, Debug)]
pub struct JobVerdict {
    /// The job this verdict closes.
    pub job: JobId,
    /// The tenant that submitted it.
    pub tenant: TenantId,
    /// How the job ended.
    pub disposition: Disposition,
    /// The coverage verdict: complete for [`Disposition::Completed`],
    /// the last preemption-point partial (if any) for shed and failed
    /// jobs, `None` for rejected jobs.
    pub outcome: Option<WideGradingOutcome>,
    /// Batches fully graded across every slice the job ran.
    pub batches_done: u64,
    /// Times the job was preempted at a batch boundary and parked.
    pub preemptions: u32,
    /// Times a slice died to a shard panic and the job was retried.
    pub retries: u32,
    /// Human-readable cause for non-completed dispositions.
    pub reason: Option<String>,
    /// Submission-to-verdict wall-clock time.
    pub latency: Duration,
}

impl JobVerdict {
    /// The timing-free identity of the verdict's outcome
    /// ([`WideGradingOutcome::digest`]), if it has one — equal digests
    /// mean a preempted-and-resumed job graded bit-identically to an
    /// uninterrupted run.
    pub fn digest(&self) -> Option<u64> {
        self.outcome.as_ref().map(WideGradingOutcome::digest)
    }
}
