//! The compiled-artifact cache: prepared cores, compiled circuits and
//! default fault universes, shared across every job that submits the
//! same design.
//!
//! Preparation (scan stitching + compile) dwarfs a short grading job,
//! so the control plane keys finished artifacts by
//! `(netlist fingerprint, chain count)` and evicts least-recently-used
//! entries once the configured capacity is reached. The fingerprint is
//! [`lbist_ckpt::netlist_fingerprint`] over the *submitted* netlist —
//! names excluded — so byte-for-byte different serializations of the
//! same structure share one entry.

use lbist_core::ModelTag;
use lbist_dft::{prepare_core, BistReadyCore, PrepConfig, TpiMethod};
use lbist_fault::{Fault, FaultUniverse};
use lbist_netlist::Netlist;
use lbist_sim::{CompiledCircuit, KernelProgram};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

/// Everything a job slice needs that depends only on the design:
/// the scan-stitched core, its compiled circuit, and the lazily built
/// default fault universes.
pub(crate) struct JobAssets {
    /// The prepared (scan-stitched, test-mode-muxed) core.
    pub core: BistReadyCore,
    /// The compiled simulation of `core.netlist`.
    pub cc: CompiledCircuit,
    stuck: OnceLock<Arc<Vec<Fault>>>,
    transition: OnceLock<Arc<Vec<Fault>>>,
    kernel: OnceLock<Arc<KernelProgram>>,
}

impl JobAssets {
    /// The collapsed representative fault universe of the prepared core
    /// under `model`, built on first use and shared by every job that
    /// grades this design without an explicit fault list.
    pub fn default_faults(&self, model: ModelTag) -> Arc<Vec<Fault>> {
        match model {
            ModelTag::StuckAt => self
                .stuck
                .get_or_init(|| {
                    Arc::new(FaultUniverse::stuck_at(&self.core.netlist).representatives())
                })
                .clone(),
            ModelTag::Transition => self
                .transition
                .get_or_init(|| {
                    // Stems only: transition grading is stem-based (the
                    // sim rejects branch faults).
                    Arc::new(
                        FaultUniverse::transition(&self.core.netlist)
                            .representatives()
                            .into_iter()
                            .filter(|f| f.is_stem())
                            .collect(),
                    )
                })
                .clone(),
        }
    }

    /// `true` once [`JobAssets::kernel_program`] has lowered this
    /// design's compiled kernel (the `serve.kernel_cache_hits/misses`
    /// split).
    pub fn kernel_ready(&self) -> bool {
        self.kernel.get().is_some()
    }

    /// The compiled simulation kernel shared by every default-fault-list
    /// job on this design, lowered once per cache entry with a keep set
    /// covering *both* default universes — so stuck-at and transition
    /// slices, across jobs and preemption boundaries, replay the same
    /// program instead of re-lowering per slice.
    pub fn kernel_program(&self) -> Arc<KernelProgram> {
        self.kernel
            .get_or_init(|| {
                let stuck = self.default_faults(ModelTag::StuckAt);
                let transition = self.default_faults(ModelTag::Transition);
                let observed = lbist_fault::StuckAtSim::observe_all_captures(&self.cc);
                let keep = lbist_fault::grading_keep_set(
                    &self.cc,
                    &[stuck.as_slice(), transition.as_slice()],
                    &observed,
                );
                Arc::new(KernelProgram::lower(&self.cc, &keep))
            })
            .clone()
    }
}

/// Observability counters for the asset cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Admissions that reused a cached prepared core.
    pub hits: u64,
    /// Admissions that had to prepare and compile from scratch.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct CacheEntry {
    key: (u64, usize),
    assets: Arc<JobAssets>,
    last_used: u64,
}

/// LRU cache of [`JobAssets`] keyed by `(fingerprint, chains)`.
pub(crate) struct AssetCache {
    capacity: usize,
    clock: u64,
    entries: Vec<CacheEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl AssetCache {
    pub fn new(capacity: usize) -> Self {
        AssetCache {
            capacity: capacity.max(1),
            clock: 0,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
        }
    }

    /// Fetches the prepared artifacts for `(fingerprint, chains)`,
    /// building them from `netlist` on a miss. Preparation runs under
    /// `catch_unwind`: a design that breaks the scan stitcher becomes a
    /// rejection reason, never a dead control plane.
    pub fn get_or_build(
        &mut self,
        fingerprint: u64,
        chains: usize,
        netlist: &Netlist,
    ) -> Result<Arc<JobAssets>, String> {
        self.clock += 1;
        let key = (fingerprint, chains);
        if let Some(entry) = self.entries.iter_mut().find(|e| e.key == key) {
            entry.last_used = self.clock;
            self.hits += 1;
            return Ok(entry.assets.clone());
        }
        self.misses += 1;
        let assets = Arc::new(build_assets(netlist, chains)?);
        if self.entries.len() >= self.capacity {
            // Evict the stalest entry. In-flight jobs keep their Arc
            // alive, so eviction only drops the cache's own reference.
            let idx = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 1 implies a resident entry");
            self.entries.swap_remove(idx);
            self.evictions += 1;
        }
        self.entries.push(CacheEntry { key, assets: assets.clone(), last_used: self.clock });
        Ok(assets)
    }
}

fn build_assets(netlist: &Netlist, chains: usize) -> Result<JobAssets, String> {
    let built = panic::catch_unwind(AssertUnwindSafe(|| {
        let core = prepare_core(
            netlist,
            &PrepConfig {
                total_chains: chains.max(1),
                obs_budget: 0,
                tpi: TpiMethod::None,
                ..PrepConfig::default()
            },
        );
        let cc = CompiledCircuit::compile(&core.netlist).map_err(|e| e.to_string())?;
        Ok(JobAssets {
            core,
            cc,
            stuck: OnceLock::new(),
            transition: OnceLock::new(),
            kernel: OnceLock::new(),
        })
    }));
    match built {
        Ok(result) => result.map_err(|e: String| format!("design failed to compile: {e}")),
        Err(_) => Err("design preparation panicked".to_string()),
    }
}
