//! Multi-tenant job control plane over the grading engine — "BIST as a
//! service", minus the service: everything is in-process and
//! synchronous (a network front-end is a separate concern this crate
//! deliberately excludes).
//!
//! Tenants submit *serialized* designs — netlists and optional fault
//! lists sealed in the `lbist-ckpt` envelope — with a [`JobSpec`]
//! naming the fault model, batch target and lane width. Each job then
//! flows through four stages:
//!
//! 1. **Admission** ([`AdmissionPolicy`]): the payload is
//!    authenticated (magic, checksum, structural validation) and
//!    costed as `gates × batches × lanes`; over-budget or malformed
//!    jobs are rejected with a reason, immediately and cheaply.
//! 2. **Fair scheduling**: tenants are stride-scheduled by weight.
//!    Long jobs run in bounded slices and are **preempted at batch
//!    boundaries** through the engine's controlled-run checkpoints
//!    ([`lbist_core::GradingCheckpoint`]), parked to a spool
//!    directory, and later resumed bit-identically — verdict digests
//!    equal an uninterrupted run's.
//! 3. **Retry and shedding**: a slice killed by a worker failure
//!    (escalated [`lbist_exec::ShardPanic`]) is retried with
//!    deterministic jittered backoff up to the configured budget;
//!    queue overflow sheds the costliest queued job. Shed and
//!    retry-exhausted jobs still complete with partial-coverage
//!    verdicts — **every accepted job reaches a terminal
//!    [`Disposition`]**, the invariant the chaos tests pin.
//! 4. **Asset caching**: prepared cores and compiled circuits are
//!    cached by netlist fingerprint and chain count with LRU eviction,
//!    so repeat submissions of one design pay preparation once.
//!
//! ```
//! use lbist_serve::{ControlPlane, JobPayload, JobSpec, ServeConfig};
//! # use lbist_netlist::{GateKind, Netlist};
//! # let mut n = Netlist::new("demo");
//! # let a = n.add_input("a");
//! # let d = n.add_dff(a, lbist_netlist::DomainId::new(0));
//! # let g = n.try_add_gate(GateKind::And, &[a, d]).unwrap();
//! # n.add_output("y", g);
//! let mut plane = ControlPlane::new(ServeConfig::default()).unwrap();
//! let tenant = plane.register_tenant("ip-vendor", 1);
//! let payload = JobPayload { netlist: lbist_ckpt::seal_netlist(&n), faults: None };
//! let job = plane.submit(tenant, JobSpec::stuck_at(2), &payload);
//! plane.run_until_idle();
//! assert!(plane.verdict(job).unwrap().outcome.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod job;
mod sched;

pub use cache::CacheStats;
pub use job::{Disposition, JobId, JobPayload, JobSpec, JobVerdict, TenantId};
pub use sched::{AdmissionPolicy, ControlPlane, PlaneMetrics, ServeConfig};
