//! The netlist arena and its builder API.

use crate::{DomainId, GateKind, NetlistError, NodeId};
use std::collections::HashMap;
use std::fmt;

#[derive(Clone, Debug)]
struct Node {
    kind: GateKind,
    fanins: Vec<NodeId>,
    /// Clock domain, meaningful only for `Dff` nodes.
    domain: DomainId,
}

/// A gate-level netlist: the circuit representation used across the
/// workspace.
///
/// Nodes live in an append-only arena indexed by [`NodeId`]. Node fanins can
/// be rewired after creation (needed by scan insertion and X-bounding), but
/// nodes are never removed, so ids handed out stay valid for the lifetime of
/// the netlist.
///
/// # Example
///
/// ```
/// use lbist_netlist::{Netlist, GateKind, DomainId};
///
/// let mut nl = Netlist::new("sr");
/// let d = nl.add_input("d");
/// let q = nl.add_dff(d, DomainId::new(0));
/// let n = nl.add_gate(GateKind::Not, &[q]);
/// nl.add_output("qn", n);
/// assert_eq!(nl.len(), 4);
/// assert_eq!(nl.kind(q), GateKind::Dff);
/// assert_eq!(nl.fanins(n), &[q]);
/// ```
#[derive(Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
    xsources: Vec<NodeId>,
    names: HashMap<String, NodeId>,
    node_names: HashMap<NodeId, String>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
            xsources: Vec::new(),
            names: HashMap::new(),
            node_names: HashMap::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_design_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        match node.kind {
            GateKind::Input => self.inputs.push(id),
            GateKind::Output => self.outputs.push(id),
            GateKind::Dff => self.dffs.push(id),
            GateKind::XSource => self.xsources.push(id),
            _ => {}
        }
        self.nodes.push(node);
        id
    }

    /// Adds a named primary input.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_input(&mut self, name: &str) -> NodeId {
        let id = self.push(Node {
            kind: GateKind::Input,
            fanins: Vec::new(),
            domain: DomainId::default(),
        });
        self.set_name(id, name);
        id
    }

    /// Adds a named primary output marker driven by `src`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_output(&mut self, name: &str, src: NodeId) -> NodeId {
        let id = self.push(Node {
            kind: GateKind::Output,
            fanins: vec![src],
            domain: DomainId::default(),
        });
        self.set_name(id, name);
        id
    }

    /// Adds a combinational gate.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is sequential or the fanin count violates
    /// [`GateKind::fanin_bounds`]; use [`Netlist::try_add_gate`] for a
    /// fallible version.
    pub fn add_gate(&mut self, kind: GateKind, fanins: &[NodeId]) -> NodeId {
        self.try_add_gate(kind, fanins).expect("invalid gate construction")
    }

    /// Fallible version of [`Netlist::add_gate`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadFaninCount`] if the fanin count is illegal
    /// for `kind`, and [`NetlistError::DanglingFanin`] if a fanin id does not
    /// exist yet.
    pub fn try_add_gate(
        &mut self,
        kind: GateKind,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        if kind == GateKind::Dff {
            return Err(NetlistError::BadFaninCount { kind, got: fanins.len() });
        }
        if !kind.accepts_fanins(fanins.len()) {
            return Err(NetlistError::BadFaninCount { kind, got: fanins.len() });
        }
        let next = NodeId::from_index(self.nodes.len());
        for &f in fanins {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::DanglingFanin { node: next, fanin: f });
            }
        }
        Ok(self.push(Node { kind, fanins: fanins.to_vec(), domain: DomainId::default() }))
    }

    /// Adds a rising-edge D flip-flop in clock domain `domain`, fed by `d`.
    pub fn add_dff(&mut self, d: NodeId, domain: DomainId) -> NodeId {
        assert!(d.index() < self.nodes.len(), "dangling D fanin");
        self.push(Node { kind: GateKind::Dff, fanins: vec![d], domain })
    }

    /// Adds a D flip-flop whose `D` pin will be connected later with
    /// [`Netlist::set_fanin`]. Until then it feeds back on itself (a legal
    /// hold register), so validation still passes.
    pub fn add_dff_floating(&mut self, domain: DomainId) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.push(Node { kind: GateKind::Dff, fanins: vec![id], domain })
    }

    /// Adds an unknown-value source (to be X-bounded by DFT).
    pub fn add_xsource(&mut self) -> NodeId {
        self.push(Node { kind: GateKind::XSource, fanins: Vec::new(), domain: DomainId::default() })
    }

    /// Adds a constant node.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        let kind = if value { GateKind::Const1 } else { GateKind::Const0 };
        self.push(Node { kind, fanins: Vec::new(), domain: DomainId::default() })
    }

    /// Rewires pin `pin` of `node` to `src`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadPin`] if the pin index is out of range and
    /// [`NetlistError::DanglingFanin`] if `src` does not exist.
    pub fn set_fanin(&mut self, node: NodeId, pin: usize, src: NodeId) -> Result<(), NetlistError> {
        if src.index() >= self.nodes.len() {
            return Err(NetlistError::DanglingFanin { node, fanin: src });
        }
        let n = &mut self.nodes[node.index()];
        if pin >= n.fanins.len() {
            return Err(NetlistError::BadPin { node, pin });
        }
        n.fanins[pin] = src;
        Ok(())
    }

    /// Replaces every fanin reference to `from` with `to`, across all nodes.
    ///
    /// This is the primitive DFT transformations use to splice bounding or
    /// observation logic into existing nets. References inside `skip` nodes
    /// are left untouched (so the splice itself can keep reading `from`).
    pub fn rewire_readers(&mut self, from: NodeId, to: NodeId, skip: &[NodeId]) -> usize {
        let mut count = 0;
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            if skip.iter().any(|s| s.index() == idx) {
                continue;
            }
            for f in &mut node.fanins {
                if *f == from {
                    *f = to;
                    count += 1;
                }
            }
        }
        count
    }

    /// Assigns a name to a node.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used by a different node.
    pub fn set_name(&mut self, node: NodeId, name: &str) {
        if let Some(&existing) = self.names.get(name) {
            assert_eq!(existing, node, "duplicate node name `{name}`");
            return;
        }
        if let Some(old) = self.node_names.insert(node, name.to_string()) {
            self.names.remove(&old);
        }
        self.names.insert(name.to_string(), node);
    }

    /// Looks up the name of a node, if it has one.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.node_names.get(&node).map(String::as_str)
    }

    /// Finds a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Number of nodes in the arena (all kinds).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all node ids in arena order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// The kind of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn kind(&self, node: NodeId) -> GateKind {
        self.nodes[node.index()].kind
    }

    /// The fanins of a node, in pin order.
    #[inline]
    pub fn fanins(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].fanins
    }

    /// The clock domain of a node. Only meaningful for `Dff` nodes; other
    /// kinds return `None`.
    #[inline]
    pub fn domain(&self, node: NodeId) -> Option<DomainId> {
        let n = &self.nodes[node.index()];
        if n.kind == GateKind::Dff {
            Some(n.domain)
        } else {
            None
        }
    }

    /// Moves a flip-flop to a different clock domain.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a `Dff`.
    pub fn set_domain(&mut self, node: NodeId, domain: DomainId) {
        let n = &mut self.nodes[node.index()];
        assert_eq!(n.kind, GateKind::Dff, "set_domain on non-DFF node");
        n.domain = domain;
    }

    /// Primary inputs, in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output markers, in creation order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All flip-flops, in creation order.
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// All unknown-value sources, in creation order.
    pub fn xsources(&self) -> &[NodeId] {
        &self.xsources
    }

    /// Number of clock domains (one more than the highest domain index used
    /// by any flip-flop; zero when there are no flip-flops).
    pub fn num_domains(&self) -> usize {
        self.dffs.iter().map(|&ff| self.nodes[ff.index()].domain.index() + 1).max().unwrap_or(0)
    }

    /// Flip-flops belonging to the given clock domain, in creation order.
    pub fn dffs_in_domain(&self, domain: DomainId) -> Vec<NodeId> {
        self.dffs.iter().copied().filter(|&ff| self.nodes[ff.index()].domain == domain).collect()
    }

    /// Count of logic gates (see [`GateKind::is_logic`]).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_logic()).count()
    }

    /// Total area in NAND2 gate-equivalents (see
    /// [`GateKind::gate_equivalents`]).
    pub fn gate_equivalents(&self) -> f64 {
        self.nodes.iter().map(|n| n.kind.gate_equivalents(n.fanins.len())).sum()
    }

    /// Structural sanity check: fanin arities, no dangling references, no
    /// output-feeding-output chains, and no combinational cycles.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (idx, node) in self.nodes.iter().enumerate() {
            let id = NodeId::from_index(idx);
            if !node.kind.accepts_fanins(node.fanins.len()) {
                return Err(NetlistError::BadFaninCount {
                    kind: node.kind,
                    got: node.fanins.len(),
                });
            }
            for &f in &node.fanins {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::DanglingFanin { node: id, fanin: f });
                }
                if node.kind == GateKind::Output && self.nodes[f.index()].kind == GateKind::Output {
                    return Err(NetlistError::OutputFeedsOutput { node: f });
                }
            }
        }
        // Cycle check over the combinational graph (DFF outputs are sources,
        // DFF D-pins are sinks, so edges into a DFF are not followed).
        crate::level::Levelization::compute(self).map(|_| ())
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Netlist")
            .field("name", &self.name)
            .field("nodes", &self.nodes.len())
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .field("dffs", &self.dffs.len())
            .field("xsources", &self.xsources.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]);
        nl.add_output("y", g);
        nl
    }

    #[test]
    fn build_and_query() {
        let nl = tiny();
        assert_eq!(nl.len(), 4);
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 1);
        assert_eq!(nl.gate_count(), 1);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.find("a"), Some(nl.inputs()[0]));
        assert_eq!(nl.node_name(nl.inputs()[1]), Some("b"));
        assert_eq!(nl.find("nope"), None);
    }

    #[test]
    fn arity_is_enforced() {
        let mut nl = tiny();
        let a = nl.inputs()[0];
        let err = nl.try_add_gate(GateKind::Not, &[a, a]).unwrap_err();
        assert!(matches!(err, NetlistError::BadFaninCount { .. }));
        let err = nl.try_add_gate(GateKind::And, &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::BadFaninCount { .. }));
        assert!(nl.try_add_gate(GateKind::And, &[a, a, a, a]).is_ok());
    }

    #[test]
    fn dangling_fanin_is_rejected() {
        let mut nl = tiny();
        let ghost = NodeId::from_index(999);
        let err = nl.try_add_gate(GateKind::Buf, &[ghost]).unwrap_err();
        assert!(matches!(err, NetlistError::DanglingFanin { .. }));
    }

    #[test]
    fn dff_domains() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let f0 = nl.add_dff(a, DomainId::new(0));
        let f1 = nl.add_dff(f0, DomainId::new(3));
        assert_eq!(nl.num_domains(), 4);
        assert_eq!(nl.domain(f1), Some(DomainId::new(3)));
        assert_eq!(nl.domain(a), None);
        assert_eq!(nl.dffs_in_domain(DomainId::new(3)), vec![f1]);
        nl.set_domain(f1, DomainId::new(1));
        assert_eq!(nl.num_domains(), 2);
    }

    #[test]
    fn floating_dff_then_connect() {
        let mut nl = Netlist::new("f");
        let ff = nl.add_dff_floating(DomainId::new(0));
        assert!(nl.validate().is_ok()); // self-loop through a FF is legal
        let a = nl.add_input("a");
        nl.set_fanin(ff, 0, a).unwrap();
        assert_eq!(nl.fanins(ff), &[a]);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn rewire_readers_respects_skip() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let b1 = nl.add_gate(GateKind::Buf, &[a]);
        let b2 = nl.add_gate(GateKind::Buf, &[a]);
        let n = nl.rewire_readers(a, b1, &[b1]);
        assert_eq!(n, 1);
        assert_eq!(nl.fanins(b2), &[b1]);
        assert_eq!(nl.fanins(b1), &[a]);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::And, &[a, a]);
        let g2 = nl.add_gate(GateKind::Or, &[g1, a]);
        nl.set_fanin(g1, 1, g2).unwrap();
        let err = nl.validate().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn cycle_through_dff_is_fine() {
        let mut nl = Netlist::new("ok");
        let ff = nl.add_dff_floating(DomainId::new(0));
        let inv = nl.add_gate(GateKind::Not, &[ff]);
        nl.set_fanin(ff, 0, inv).unwrap(); // toggle flop
        assert!(nl.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_panic() {
        let mut nl = Netlist::new("dup");
        nl.add_input("a");
        nl.add_input("a");
    }

    #[test]
    fn gate_equivalents_accumulate() {
        let nl = tiny();
        assert!(nl.gate_equivalents() > 0.0);
        let mut bigger = tiny();
        let a = bigger.inputs()[0];
        bigger.add_gate(GateKind::Xor, &[a, a]);
        assert!(bigger.gate_equivalents() > nl.gate_equivalents());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", tiny()).is_empty());
    }
}
