//! Error type for netlist construction and validation.

use crate::{GateKind, NodeId};
use std::error::Error;
use std::fmt;

/// Errors raised while building or validating a [`crate::Netlist`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was given a fanin count outside its legal bounds.
    BadFaninCount {
        /// The offending gate kind.
        kind: GateKind,
        /// The fanin count that was supplied.
        got: usize,
    },
    /// A fanin referenced a node id that does not exist in this netlist.
    DanglingFanin {
        /// The node whose fanin is dangling.
        node: NodeId,
        /// The nonexistent fanin id.
        fanin: NodeId,
    },
    /// A node drives an `Output` marker but is itself an `Output` marker.
    OutputFeedsOutput {
        /// The inner output node.
        node: NodeId,
    },
    /// The combinational part of the netlist contains a cycle through the
    /// given node (cycles must be cut by flip-flops).
    CombinationalCycle {
        /// A node on the cycle.
        node: NodeId,
    },
    /// Two nodes carry the same name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// A name lookup failed.
    UnknownName {
        /// The name that was not found.
        name: String,
    },
    /// A pin index was out of range for the node.
    BadPin {
        /// The node whose pin was addressed.
        node: NodeId,
        /// The out-of-range pin index.
        pin: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadFaninCount { kind, got } => {
                let (lo, hi) = kind.fanin_bounds();
                match hi {
                    Some(hi) if lo == hi => {
                        write!(f, "{kind} expects exactly {lo} fanin(s), got {got}")
                    }
                    Some(hi) => write!(f, "{kind} expects {lo}..={hi} fanins, got {got}"),
                    None => write!(f, "{kind} expects at least {lo} fanins, got {got}"),
                }
            }
            NetlistError::DanglingFanin { node, fanin } => {
                write!(f, "node {node} references nonexistent fanin {fanin}")
            }
            NetlistError::OutputFeedsOutput { node } => {
                write!(f, "output marker {node} drives another output marker")
            }
            NetlistError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            NetlistError::DuplicateName { name } => write!(f, "duplicate node name `{name}`"),
            NetlistError::UnknownName { name } => write!(f, "unknown node name `{name}`"),
            NetlistError::BadPin { node, pin } => {
                write!(f, "pin {pin} out of range on node {node}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = NetlistError::BadFaninCount { kind: GateKind::Not, got: 2 };
        assert_eq!(e.to_string(), "NOT expects exactly 1 fanin(s), got 2");
        let e = NetlistError::BadFaninCount { kind: GateKind::And, got: 1 };
        assert_eq!(e.to_string(), "AND expects at least 2 fanins, got 1");
        let e = NetlistError::CombinationalCycle { node: NodeId::from_index(4) };
        assert!(e.to_string().contains("n4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
