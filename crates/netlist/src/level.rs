//! Levelization: topological ordering of the combinational graph.
//!
//! Full-scan test generation and fault simulation treat flip-flop outputs as
//! pseudo-primary-inputs and flip-flop `D` pins as pseudo-primary-outputs.
//! [`Levelization`] computes an evaluation order compatible with that view:
//! frame sources (inputs, constants, X-sources, flip-flop `Q` outputs) sit
//! at level 0 and every combinational gate is placed after all of its
//! fanins.

use crate::{Netlist, NetlistError, NodeId};

/// A topological ordering of a netlist's combinational graph with per-node
/// logic levels.
///
/// # Example
///
/// ```
/// use lbist_netlist::{Netlist, GateKind, Levelization};
///
/// let mut nl = Netlist::new("lv");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate(GateKind::And, &[a, b]);
/// let h = nl.add_gate(GateKind::Not, &[g]);
/// nl.add_output("y", h);
///
/// let lv = Levelization::compute(&nl).unwrap();
/// assert_eq!(lv.level(a), 0);
/// assert_eq!(lv.level(g), 1);
/// assert_eq!(lv.level(h), 2);
/// assert_eq!(lv.max_level(), 3); // the OUTPUT marker sits one past NOT
/// ```
#[derive(Clone, Debug)]
pub struct Levelization {
    order: Vec<NodeId>,
    level: Vec<u32>,
    max_level: u32,
}

impl Levelization {
    /// Computes the levelization of `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// graph (ignoring edges *into* flip-flops) contains a cycle.
    pub fn compute(netlist: &Netlist) -> Result<Self, NetlistError> {
        let n = netlist.len();
        let mut level = vec![0u32; n];
        let mut indegree = vec![0u32; n];
        let mut order = Vec::with_capacity(n);

        // Frame sources have no combinational dependence on their fanins.
        for id in netlist.ids() {
            if netlist.kind(id).is_frame_source() {
                continue;
            }
            indegree[id.index()] = netlist.fanins(id).len() as u32;
        }

        // Kahn's algorithm; a simple FIFO keeps the order deterministic.
        let mut queue: std::collections::VecDeque<NodeId> =
            netlist.ids().filter(|&id| indegree[id.index()] == 0).collect();

        // Fanout adjacency restricted to combinational consumers.
        let mut fanout_start = vec![0u32; n + 1];
        for id in netlist.ids() {
            if netlist.kind(id).is_frame_source() {
                continue;
            }
            for &f in netlist.fanins(id) {
                fanout_start[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            fanout_start[i + 1] += fanout_start[i];
        }
        let mut fanout = vec![NodeId::from_index(0); fanout_start[n] as usize];
        let mut cursor = fanout_start.clone();
        for id in netlist.ids() {
            if netlist.kind(id).is_frame_source() {
                continue;
            }
            for &f in netlist.fanins(id) {
                fanout[cursor[f.index()] as usize] = id;
                cursor[f.index()] += 1;
            }
        }

        let mut max_level = 0u32;
        while let Some(id) = queue.pop_front() {
            order.push(id);
            let my_level = level[id.index()];
            let (lo, hi) =
                (fanout_start[id.index()] as usize, fanout_start[id.index() + 1] as usize);
            for &succ in &fanout[lo..hi] {
                let s = succ.index();
                level[s] = level[s].max(my_level + 1);
                max_level = max_level.max(level[s]);
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push_back(succ);
                }
            }
        }

        if order.len() != n {
            // Some node never reached indegree 0: it sits on a cycle.
            let culprit = netlist
                .ids()
                .find(|&id| indegree[id.index()] > 0)
                .expect("cycle implies a node with positive indegree");
            return Err(NetlistError::CombinationalCycle { node: culprit });
        }

        Ok(Levelization { order, level, max_level })
    }

    /// All nodes in a valid combinational evaluation order (frame sources
    /// first).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The logic level of a node (0 for frame sources).
    #[inline]
    pub fn level(&self, node: NodeId) -> u32 {
        self.level[node.index()]
    }

    /// The largest level in the design (combinational depth including output
    /// markers).
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Nodes of the evaluation order that are *not* frame sources — i.e. the
    /// gates a simulator actually needs to evaluate each frame, in order.
    pub fn eval_order<'a>(&'a self, netlist: &'a Netlist) -> impl Iterator<Item = NodeId> + 'a {
        self.order.iter().copied().filter(move |&id| !netlist.kind(id).is_frame_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainId, GateKind};

    #[test]
    fn order_respects_dependencies() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Xor, &[a, b]);
        let g2 = nl.add_gate(GateKind::And, &[g1, b]);
        let g3 = nl.add_gate(GateKind::Or, &[g2, g1]);
        nl.add_output("y", g3);
        let lv = Levelization::compute(&nl).unwrap();
        let pos: Vec<usize> =
            nl.ids().map(|id| lv.order().iter().position(|&o| o == id).unwrap()).collect();
        for id in nl.ids() {
            if nl.kind(id).is_frame_source() {
                continue;
            }
            for &f in nl.fanins(id) {
                assert!(pos[f.index()] < pos[id.index()], "{f} must precede {id}");
            }
        }
    }

    #[test]
    fn dff_breaks_dependence() {
        let mut nl = Netlist::new("t");
        let ff = nl.add_dff_floating(DomainId::new(0));
        let inv = nl.add_gate(GateKind::Not, &[ff]);
        nl.set_fanin(ff, 0, inv).unwrap();
        let lv = Levelization::compute(&nl).unwrap();
        assert_eq!(lv.level(ff), 0);
        assert_eq!(lv.level(inv), 1);
    }

    #[test]
    fn eval_order_skips_sources() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.add_xsource();
        let g = nl.add_gate(GateKind::Or, &[a, x]);
        nl.add_output("y", g);
        let lv = Levelization::compute(&nl).unwrap();
        let evals: Vec<NodeId> = lv.eval_order(&nl).collect();
        assert_eq!(evals.len(), 2); // OR gate + OUTPUT marker
        assert!(!evals.contains(&a));
        assert!(!evals.contains(&x));
    }

    #[test]
    fn reports_cycles() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::And, &[a, a]);
        let g2 = nl.add_gate(GateKind::And, &[g1, a]);
        nl.set_fanin(g1, 1, g2).unwrap();
        assert!(matches!(Levelization::compute(&nl), Err(NetlistError::CombinationalCycle { .. })));
    }

    #[test]
    fn empty_netlist_levelizes() {
        let nl = Netlist::new("e");
        let lv = Levelization::compute(&nl).unwrap();
        assert!(lv.order().is_empty());
        assert_eq!(lv.max_level(), 0);
    }
}
