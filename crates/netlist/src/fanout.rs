//! Fanout (reader) maps in compressed sparse row form.

use crate::{Netlist, NodeId};

/// The fanout map of a netlist: for every node, the list of nodes that read
/// it, in arena order.
///
/// Built once and queried many times by fault propagation, test point
/// scoring and scan stitching. Stored CSR-style so a 600K-gate netlist costs
/// two flat arrays rather than 600K `Vec`s.
///
/// # Example
///
/// ```
/// use lbist_netlist::{Netlist, GateKind, Fanouts};
///
/// let mut nl = Netlist::new("f");
/// let a = nl.add_input("a");
/// let g1 = nl.add_gate(GateKind::Not, &[a]);
/// let g2 = nl.add_gate(GateKind::Buf, &[a]);
/// let fo = Fanouts::compute(&nl);
/// assert_eq!(fo.readers(a), &[g1, g2]);
/// assert_eq!(fo.degree(a), 2);
/// assert!(fo.readers(g2).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Fanouts {
    start: Vec<u32>,
    readers: Vec<NodeId>,
}

impl Fanouts {
    /// Builds the fanout map of `netlist`.
    pub fn compute(netlist: &Netlist) -> Self {
        let n = netlist.len();
        let mut start = vec![0u32; n + 1];
        for id in netlist.ids() {
            for &f in netlist.fanins(id) {
                start[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            start[i + 1] += start[i];
        }
        let mut readers = vec![NodeId::from_index(0); start[n] as usize];
        let mut cursor = start.clone();
        for id in netlist.ids() {
            for &f in netlist.fanins(id) {
                readers[cursor[f.index()] as usize] = id;
                cursor[f.index()] += 1;
            }
        }
        Fanouts { start, readers }
    }

    /// The nodes that read `node`'s output.
    #[inline]
    pub fn readers(&self, node: NodeId) -> &[NodeId] {
        let lo = self.start[node.index()] as usize;
        let hi = self.start[node.index() + 1] as usize;
        &self.readers[lo..hi]
    }

    /// Fanout degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.readers(node).len()
    }

    /// Total number of fanin↔fanout edges in the netlist.
    pub fn num_edges(&self) -> usize {
        self.readers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn degrees_match_explicit_count() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]);
        let g2 = nl.add_gate(GateKind::Or, &[a, g1]);
        nl.add_output("y", g2);
        let fo = Fanouts::compute(&nl);
        assert_eq!(fo.degree(a), 2);
        assert_eq!(fo.degree(b), 1);
        assert_eq!(fo.degree(g1), 1);
        assert_eq!(fo.degree(g2), 1);
        assert_eq!(fo.num_edges(), 5);
    }

    #[test]
    fn multi_pin_reader_listed_per_pin() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Xor, &[a, a]);
        let fo = Fanouts::compute(&nl);
        // A gate reading the same net on two pins appears twice.
        assert_eq!(fo.readers(a), &[g, g]);
    }

    #[test]
    fn empty_netlist() {
        let fo = Fanouts::compute(&Netlist::new("e"));
        assert_eq!(fo.num_edges(), 0);
    }
}
