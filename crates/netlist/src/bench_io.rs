//! ISCAS-`.bench`-style text format.
//!
//! The grammar is the classic one used by the ISCAS-85/89 benchmark suites,
//! extended with `DFF@<domain>` for multi-clock designs, `XSOURCE`,
//! `CONST0`/`CONST1` and `MUX2`:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(y)
//! g1 = NAND(a, b)
//! q  = DFF(g1)        # domain 0 by default
//! q2 = DFF@3(g1)      # domain 3
//! y  = BUF(q)
//! ```

use crate::{DomainId, GateKind, Netlist, NodeId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error from [`parse_bench`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchParseError {
    /// 1-based line number of the offending line (0 when not line-specific).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BenchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for BenchParseError {}

fn err(line: usize, message: impl Into<String>) -> BenchParseError {
    BenchParseError { line, message: message.into() }
}

struct Assign {
    line: usize,
    lhs: String,
    kind: GateKind,
    domain: DomainId,
    args: Vec<String>,
}

/// Parses a `.bench`-style description into a [`Netlist`].
///
/// Signals may be used before they are defined (the format is unordered);
/// the parser resolves all references in a second pass.
///
/// # Errors
///
/// Returns a [`BenchParseError`] describing the first malformed or
/// unresolvable line.
///
/// # Example
///
/// ```
/// let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
/// let nl = lbist_netlist::parse_bench(text).unwrap();
/// assert_eq!(nl.inputs().len(), 2);
/// assert_eq!(nl.outputs().len(), 1);
/// ```
pub fn parse_bench(text: &str) -> Result<Netlist, BenchParseError> {
    // ---- pass 1: tokenize -------------------------------------------------
    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut assigns: Vec<Assign> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let upper = stripped.to_ascii_uppercase();
        if upper.starts_with("INPUT") && !stripped.contains('=') {
            inputs.push((line, inner_name(stripped, "INPUT").map_err(|m| err(line, m))?));
            continue;
        }
        if upper.starts_with("OUTPUT") && !stripped.contains('=') {
            outputs.push((line, inner_name(stripped, "OUTPUT").map_err(|m| err(line, m))?));
            continue;
        }
        let (lhs, rhs) =
            stripped.split_once('=').ok_or_else(|| err(line, "expected `name = GATE(args)`"))?;
        let lhs = lhs.trim().to_string();
        let rhs = rhs.trim();
        let open = rhs.find('(').ok_or_else(|| err(line, "missing `(` in gate expression"))?;
        if !rhs.ends_with(')') {
            return Err(err(line, "missing `)` in gate expression"));
        }
        let head = rhs[..open].trim();
        let args_str = &rhs[open + 1..rhs.len() - 1];
        let (kind_name, domain) = match head.split_once('@') {
            Some((k, d)) => {
                let dom: u16 =
                    d.trim().parse().map_err(|_| err(line, format!("bad domain index `{d}`")))?;
                (k.trim(), DomainId::new(dom))
            }
            None => (head, DomainId::default()),
        };
        let kind = GateKind::from_text_name(kind_name)
            .ok_or_else(|| err(line, format!("unknown gate `{kind_name}`")))?;
        if matches!(kind, GateKind::Input | GateKind::Output) {
            return Err(err(line, format!("{kind} cannot appear on the right-hand side")));
        }
        let args: Vec<String> = args_str
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect();
        if !kind.accepts_fanins(args.len()) {
            return Err(err(line, format!("{kind} given {} fanin(s)", args.len())));
        }
        assigns.push(Assign { line, lhs, kind, domain, args });
    }

    // ---- pass 2: build nodes, then resolve fanins -------------------------
    let mut nl = Netlist::new("bench");
    let mut signals: HashMap<String, NodeId> = HashMap::new();
    for (line, name) in &inputs {
        if signals.contains_key(name) {
            return Err(err(*line, format!("signal `{name}` defined twice")));
        }
        signals.insert(name.clone(), nl.add_input(name));
    }
    // A dummy placeholder target so nodes can be created before their fanins
    // are known; every pin is rewired below, so the dummy ends up unread.
    let dummy = nl.add_const(false);
    for a in &assigns {
        if signals.contains_key(&a.lhs) {
            return Err(err(a.line, format!("signal `{}` defined twice", a.lhs)));
        }
        let id = match a.kind {
            GateKind::Dff => nl.add_dff(dummy, a.domain),
            _ => {
                let dummies = vec![dummy; a.args.len()];
                nl.try_add_gate(a.kind, &dummies).map_err(|e| err(a.line, e.to_string()))?
            }
        };
        nl.set_name(id, &a.lhs);
        signals.insert(a.lhs.clone(), id);
    }
    for a in &assigns {
        let id = signals[&a.lhs];
        for (pin, arg) in a.args.iter().enumerate() {
            let src = *signals
                .get(arg)
                .ok_or_else(|| err(a.line, format!("signal `{arg}` used but never defined")))?;
            nl.set_fanin(id, pin, src).expect("pin index in range by construction");
        }
    }
    for (line, name) in &outputs {
        let src = *signals
            .get(name)
            .ok_or_else(|| err(*line, format!("output `{name}` never defined")))?;
        nl.add_output(&format!("{name}__po"), src);
    }
    Ok(nl)
}

fn inner_name(original: &str, kw: &str) -> Result<String, String> {
    let rest = original[kw.len()..].trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| format!("expected `{kw}(name)`"))?;
    let name = inner.trim();
    if name.is_empty() {
        return Err(format!("empty name in `{kw}(...)`"));
    }
    Ok(name.to_string())
}

/// Serialises a netlist to the `.bench`-style text format.
///
/// Nodes without explicit names are given synthetic `n<i>` names. Constant
/// nodes that drive nothing (e.g. the parser's placeholder) are skipped, so
/// the output round-trips through [`parse_bench`] to an isomorphic netlist.
pub fn to_bench(netlist: &Netlist) -> String {
    let fanouts = crate::Fanouts::compute(netlist);
    let mut out = String::new();
    out.push_str(&format!("# design {}\n", netlist.name()));
    let name_of = |id: NodeId| -> String {
        netlist.node_name(id).map(str::to_string).unwrap_or_else(|| format!("n{}", id.index()))
    };
    for &pi in netlist.inputs() {
        out.push_str(&format!("INPUT({})\n", name_of(pi)));
    }
    for &po in netlist.outputs() {
        let src = netlist.fanins(po)[0];
        out.push_str(&format!("OUTPUT({})\n", name_of(src)));
    }
    for id in netlist.ids() {
        let kind = netlist.kind(id);
        match kind {
            GateKind::Input | GateKind::Output => continue,
            GateKind::Const0 | GateKind::Const1 | GateKind::XSource if fanouts.degree(id) == 0 => {
                continue
            }
            GateKind::Dff => {
                let d = netlist.fanins(id)[0];
                let dom = netlist.domain(id).unwrap_or_default();
                if dom.index() == 0 {
                    out.push_str(&format!("{} = DFF({})\n", name_of(id), name_of(d)));
                } else {
                    out.push_str(&format!(
                        "{} = DFF@{}({})\n",
                        name_of(id),
                        dom.index(),
                        name_of(d)
                    ));
                }
            }
            _ => {
                let args: Vec<String> = netlist.fanins(id).iter().map(|&f| name_of(f)).collect();
                out.push_str(&format!(
                    "{} = {}({})\n",
                    name_of(id),
                    kind.text_name(),
                    args.join(", ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17_LIKE: &str = "\
# tiny test circuit
INPUT(g1)
INPUT(g2)
INPUT(g3)
OUTPUT(o1)
i1 = NAND(g1, g2)
i2 = NAND(g2, g3)
o1 = NAND(i1, i2)
";

    #[test]
    fn parses_simple_circuit() {
        let nl = parse_bench(C17_LIKE).unwrap();
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 1);
        assert_eq!(nl.gate_count(), 3);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn forward_references_resolve() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(mid)\nmid = BUF(a)\n";
        let nl = parse_bench(text).unwrap();
        assert!(nl.validate().is_ok());
        let y = nl.find("y").unwrap();
        let mid = nl.find("mid").unwrap();
        assert_eq!(nl.fanins(y), &[mid]);
        assert_eq!(nl.dffs().len(), 0);
    }

    #[test]
    fn dff_with_domain_round_trips() {
        let text = "INPUT(a)\nOUTPUT(q)\nq = DFF@2(a)\n";
        let nl = parse_bench(text).unwrap();
        let q = nl.find("q").unwrap();
        assert_eq!(nl.domain(q), Some(DomainId::new(2)));
        let re = parse_bench(&to_bench(&nl)).unwrap();
        let q2 = re.find("q").unwrap();
        assert_eq!(re.domain(q2), Some(DomainId::new(2)));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let nl = parse_bench(C17_LIKE).unwrap();
        let re = parse_bench(&to_bench(&nl)).unwrap();
        assert_eq!(re.inputs().len(), nl.inputs().len());
        assert_eq!(re.outputs().len(), nl.outputs().len());
        assert_eq!(re.gate_count(), nl.gate_count());
        assert_eq!(re.dffs().len(), nl.dffs().len());
    }

    #[test]
    fn undefined_signal_is_reported() {
        let e = parse_bench("INPUT(a)\ny = NOT(ghost)\n").unwrap_err();
        assert!(e.to_string().contains("ghost"));
    }

    #[test]
    fn duplicate_definition_is_reported() {
        let e = parse_bench("INPUT(a)\na = NOT(a)\n").unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn garbage_lines_are_reported_with_line_numbers() {
        let e = parse_bench("INPUT(a)\nwhat is this\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_bench("INPUT(a)\ny = NOT a\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_bench("INPUT(a)\ny = FROB(a)\n").unwrap_err();
        assert!(e.message.contains("FROB"));
    }

    #[test]
    fn arity_errors_are_reported() {
        let e = parse_bench("INPUT(a)\ny = NOT(a, a)\n").unwrap_err();
        assert!(e.message.contains("NOT"));
        let e = parse_bench("INPUT(a)\ny = AND(a)\n").unwrap_err();
        assert!(e.message.contains("AND"));
    }

    #[test]
    fn buff_alias_accepted() {
        let nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n").unwrap();
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let nl = parse_bench("\n# hello\nINPUT(a) # trailing\nOUTPUT(a)\n\n").unwrap();
        assert_eq!(nl.inputs().len(), 1);
    }

    #[test]
    fn sequential_loop_parses() {
        // A two-flop ring: legal because the loop passes through DFFs.
        let text = "OUTPUT(q1)\nq1 = DFF(n1)\nq2 = DFF(q1)\nn1 = NOT(q2)\n";
        let nl = parse_bench(text).unwrap();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.dffs().len(), 2);
    }

    #[test]
    fn xsource_and_consts_parse() {
        let text = "OUTPUT(y)\nx = XSOURCE()\nc = CONST1()\ny = AND(x, c)\n";
        let nl = parse_bench(text).unwrap();
        assert_eq!(nl.xsources().len(), 1);
        assert!(nl.validate().is_ok());
        // Unread parser placeholder must not leak into serialisation.
        let re = parse_bench(&to_bench(&nl)).unwrap();
        assert_eq!(re.xsources().len(), 1);
    }
}
