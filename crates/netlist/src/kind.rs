//! The cell library: every node kind a netlist may contain.

use std::fmt;

/// The kind of a netlist node.
///
/// The library is deliberately small — it is the least common denominator of
/// the 2005-era gate libraries the paper's flow would have consumed, plus
/// the two test-specific pseudo-cells `XSource` (an unknown-value driver to
/// be bounded by DFT) and `Output` (an explicit primary-output marker so
/// output observability can be modelled independently of fanout).
///
/// # Example
///
/// ```
/// use lbist_netlist::GateKind;
/// assert!(GateKind::Nand.is_combinational());
/// assert!(GateKind::Dff.is_sequential());
/// assert_eq!(GateKind::Mux2.fanin_bounds(), (3, Some(3)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// Primary input. No fanins.
    Input,
    /// Primary output marker. Exactly one fanin; behaves as a buffer.
    Output,
    /// Constant logic 0. No fanins.
    Const0,
    /// Constant logic 1. No fanins.
    Const1,
    /// Non-inverting buffer. Exactly one fanin.
    Buf,
    /// Inverter. Exactly one fanin.
    Not,
    /// n-ary AND (n >= 2).
    And,
    /// n-ary NAND (n >= 2).
    Nand,
    /// n-ary OR (n >= 2).
    Or,
    /// n-ary NOR (n >= 2).
    Nor,
    /// n-ary XOR (n >= 2).
    Xor,
    /// n-ary XNOR (n >= 2).
    Xnor,
    /// Two-way multiplexer. Fanins are `[sel, a, b]`; output is `a` when
    /// `sel == 0` and `b` when `sel == 1`.
    Mux2,
    /// Rising-edge D flip-flop. Exactly one fanin (the `D` pin); carries a
    /// [`crate::DomainId`] naming its clock domain. The node's value is the
    /// flop's `Q` output.
    Dff,
    /// A net of unknown value during test (uninitialized RAM output, analog
    /// macro, untimed interface). DFT must bound these ("X-blocking") before
    /// signatures are meaningful. No fanins.
    XSource,
}

impl GateKind {
    /// All kinds, in a fixed order (useful for exhaustive tests).
    pub const ALL: [GateKind; 15] = [
        GateKind::Input,
        GateKind::Output,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux2,
        GateKind::Dff,
        GateKind::XSource,
    ];

    /// Returns `true` for gates whose output is a pure function of their
    /// current fanin values (everything except `Dff`).
    ///
    /// Sources with no fanins (`Input`, `Const*`, `XSource`) count as
    /// combinational: they hold a value within an evaluation frame.
    #[inline]
    pub fn is_combinational(self) -> bool {
        !matches!(self, GateKind::Dff)
    }

    /// Returns `true` only for the D flip-flop.
    #[inline]
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff)
    }

    /// Returns `true` for nodes that act as value sources in a combinational
    /// evaluation frame: primary inputs, constants, X-sources and flip-flop
    /// outputs.
    #[inline]
    pub fn is_frame_source(self) -> bool {
        matches!(
            self,
            GateKind::Input
                | GateKind::Const0
                | GateKind::Const1
                | GateKind::XSource
                | GateKind::Dff
        )
    }

    /// Returns `true` for real logic gates — nodes that cost area and carry
    /// faults (excludes `Input`/`Output` markers and constants).
    #[inline]
    pub fn is_logic(self) -> bool {
        matches!(
            self,
            GateKind::Buf
                | GateKind::Not
                | GateKind::And
                | GateKind::Nand
                | GateKind::Or
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
                | GateKind::Mux2
                | GateKind::Dff
        )
    }

    /// Minimum and maximum allowed fanin counts as `(min, Some(max))`, or
    /// `(min, None)` when the gate is n-ary with no upper bound.
    #[inline]
    pub fn fanin_bounds(self) -> (usize, Option<usize>) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::XSource => {
                (0, Some(0))
            }
            GateKind::Output | GateKind::Buf | GateKind::Not | GateKind::Dff => (1, Some(1)),
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (2, None),
            GateKind::Mux2 => (3, Some(3)),
        }
    }

    /// Checks a fanin count against [`GateKind::fanin_bounds`].
    #[inline]
    pub fn accepts_fanins(self, n: usize) -> bool {
        let (lo, hi) = self.fanin_bounds();
        n >= lo && hi.is_none_or(|h| n <= h)
    }

    /// Area of the cell in NAND2 gate-equivalents.
    ///
    /// A coarse 2-input-NAND-normalised cost model in the style of the area
    /// numbers DFT papers of the era reported ("gate count", "overhead %").
    /// n-ary gates are costed as a tree of 2-input cells.
    pub fn gate_equivalents(self, fanin_count: usize) -> f64 {
        let two_input_cost = match self {
            GateKind::Input
            | GateKind::Output
            | GateKind::Const0
            | GateKind::Const1
            | GateKind::XSource => return 0.0,
            GateKind::Buf => return 0.75,
            GateKind::Not => return 0.5,
            GateKind::And | GateKind::Or => 1.25,
            GateKind::Nand | GateKind::Nor => 1.0,
            GateKind::Xor | GateKind::Xnor => 2.5,
            GateKind::Mux2 => return 2.25,
            GateKind::Dff => return 5.5,
        };
        // A balanced tree of (n-1) two-input gates realises an n-ary gate.
        two_input_cost * fanin_count.saturating_sub(1).max(1) as f64
    }

    /// The canonical upper-case name used by the text format.
    pub fn text_name(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Output => "OUTPUT",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Mux2 => "MUX2",
            GateKind::Dff => "DFF",
            GateKind::XSource => "XSOURCE",
        }
    }

    /// Parses a gate name as written in the text format (case-insensitive).
    /// `BUFF` is accepted as an alias for `BUF` for ISCAS compatibility.
    pub fn from_text_name(name: &str) -> Option<GateKind> {
        let upper = name.to_ascii_uppercase();
        Some(match upper.as_str() {
            "INPUT" => GateKind::Input,
            "OUTPUT" => GateKind::Output,
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "MUX2" | "MUX" => GateKind::Mux2,
            "DFF" => GateKind::Dff,
            "XSOURCE" => GateKind::XSource,
            _ => return None,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_names_round_trip() {
        for kind in GateKind::ALL {
            assert_eq!(GateKind::from_text_name(kind.text_name()), Some(kind));
            assert_eq!(GateKind::from_text_name(&kind.text_name().to_lowercase()), Some(kind));
        }
        assert_eq!(GateKind::from_text_name("BUFF"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_text_name("INV"), Some(GateKind::Not));
        assert_eq!(GateKind::from_text_name("FROB"), None);
    }

    #[test]
    fn fanin_bounds_are_consistent() {
        for kind in GateKind::ALL {
            let (lo, hi) = kind.fanin_bounds();
            assert!(kind.accepts_fanins(lo));
            if let Some(hi) = hi {
                assert!(kind.accepts_fanins(hi));
                assert!(!kind.accepts_fanins(hi + 1));
            } else {
                assert!(kind.accepts_fanins(64));
            }
            if lo > 0 {
                assert!(!kind.accepts_fanins(lo - 1));
            }
        }
    }

    #[test]
    fn combinational_and_sequential_partition() {
        for kind in GateKind::ALL {
            assert_ne!(kind.is_combinational(), kind.is_sequential());
        }
    }

    #[test]
    fn gate_equivalents_monotonic_in_fanin() {
        assert!(GateKind::And.gate_equivalents(4) > GateKind::And.gate_equivalents(2));
        assert_eq!(GateKind::Input.gate_equivalents(0), 0.0);
        assert!(GateKind::Dff.gate_equivalents(1) > GateKind::Nand.gate_equivalents(2));
    }

    #[test]
    fn frame_sources_have_no_comb_fanin_dependence() {
        assert!(GateKind::Dff.is_frame_source());
        assert!(GateKind::Input.is_frame_source());
        assert!(!GateKind::Nand.is_frame_source());
    }
}
