//! Design statistics in the shape of Table 1's structural rows.

use crate::{Fanouts, GateKind, Levelization, Netlist};
use std::fmt;

/// Summary statistics of a netlist, matching the structural rows the paper
/// reports for each core (gate count, #FFs, #clock domains, ...).
///
/// # Example
///
/// ```
/// use lbist_netlist::{Netlist, GateKind, DomainId, NetlistStats};
///
/// let mut nl = Netlist::new("s");
/// let a = nl.add_input("a");
/// let g = nl.add_gate(GateKind::Not, &[a]);
/// let q = nl.add_dff(g, DomainId::new(0));
/// nl.add_output("y", q);
/// let st = NetlistStats::compute(&nl);
/// assert_eq!(st.num_ffs, 1);
/// assert_eq!(st.num_domains, 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Total arena nodes.
    pub num_nodes: usize,
    /// Logic gates (area-carrying cells).
    pub num_gates: usize,
    /// Flip-flops.
    pub num_ffs: usize,
    /// Primary inputs.
    pub num_inputs: usize,
    /// Primary outputs.
    pub num_outputs: usize,
    /// Unknown-value sources.
    pub num_xsources: usize,
    /// Clock domains.
    pub num_domains: usize,
    /// Combinational depth (max logic level).
    pub depth: u32,
    /// Area in NAND2 gate-equivalents.
    pub gate_equivalents: f64,
    /// Maximum fanout degree.
    pub max_fanout: usize,
    /// Mean fanin of logic gates.
    pub avg_fanin: f64,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle (validate
    /// first).
    pub fn compute(netlist: &Netlist) -> Self {
        let lv = Levelization::compute(netlist).expect("stats require an acyclic netlist");
        let fo = Fanouts::compute(netlist);
        let mut fanin_sum = 0usize;
        let mut fanin_gates = 0usize;
        for id in netlist.ids() {
            if netlist.kind(id).is_logic() && netlist.kind(id) != GateKind::Dff {
                fanin_sum += netlist.fanins(id).len();
                fanin_gates += 1;
            }
        }
        NetlistStats {
            name: netlist.name().to_string(),
            num_nodes: netlist.len(),
            num_gates: netlist.gate_count(),
            num_ffs: netlist.dffs().len(),
            num_inputs: netlist.inputs().len(),
            num_outputs: netlist.outputs().len(),
            num_xsources: netlist.xsources().len(),
            num_domains: netlist.num_domains(),
            depth: lv.max_level(),
            gate_equivalents: netlist.gate_equivalents(),
            max_fanout: netlist.ids().map(|id| fo.degree(id)).max().unwrap_or(0),
            avg_fanin: if fanin_gates == 0 { 0.0 } else { fanin_sum as f64 / fanin_gates as f64 },
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design           {}", self.name)?;
        writeln!(
            f,
            "gate count       {:.1}K GE ({} gates)",
            self.gate_equivalents / 1000.0,
            self.num_gates
        )?;
        writeln!(f, "# of FFs         {}", self.num_ffs)?;
        writeln!(f, "PIs / POs        {} / {}", self.num_inputs, self.num_outputs)?;
        writeln!(f, "X sources        {}", self.num_xsources)?;
        writeln!(f, "clock domains    {}", self.num_domains)?;
        writeln!(f, "depth            {}", self.depth)?;
        write!(f, "max fanout       {}", self.max_fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomainId;

    #[test]
    fn stats_reflect_structure() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]);
        let h = nl.add_gate(GateKind::Xor, &[g, a]);
        let q = nl.add_dff(h, DomainId::new(1));
        nl.add_output("y", q);
        nl.add_xsource();
        let st = NetlistStats::compute(&nl);
        assert_eq!(st.num_nodes, 7);
        assert_eq!(st.num_gates, 3); // AND, XOR, DFF
        assert_eq!(st.num_ffs, 1);
        assert_eq!(st.num_inputs, 2);
        assert_eq!(st.num_outputs, 1);
        assert_eq!(st.num_xsources, 1);
        assert_eq!(st.num_domains, 2); // domain index 1 implies domains {0,1}
        assert_eq!(st.depth, 2); // AND -> XOR; the DFF restarts at level 0
        assert!(st.gate_equivalents > 0.0);
        assert_eq!(st.max_fanout, 2);
        assert!((st.avg_fanin - 2.0).abs() < 1e-9);
        assert!(!st.to_string().is_empty());
    }
}
