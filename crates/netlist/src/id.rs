//! Typed identifiers for netlist entities.

use std::fmt;

/// Identifier of a node (gate, flip-flop, input, ...) inside a [`crate::Netlist`].
///
/// `NodeId`s are dense indices into the netlist arena; they are only
/// meaningful relative to the netlist that created them.
///
/// # Example
///
/// ```
/// use lbist_netlist::NodeId;
/// let id = NodeId::from_index(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Builds a `NodeId` from a raw arena index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("netlist node index exceeds u32::MAX"))
    }

    /// Returns the raw arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` behind this id.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a clock domain.
///
/// The paper's scheme instantiates one PRPG–MISR pair per clock domain, so
/// domains are first-class throughout the workspace. Domains are dense small
/// integers (Core Y in the paper has eight).
///
/// # Example
///
/// ```
/// use lbist_netlist::DomainId;
/// let d = DomainId::new(2);
/// assert_eq!(d.index(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomainId(u16);

impl DomainId {
    /// Builds a domain id from a dense index.
    #[inline]
    pub fn new(index: u16) -> Self {
        DomainId(index)
    }

    /// Returns the dense index of this domain.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u16` behind this id.
    #[inline]
    pub fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        for i in [0usize, 1, 17, 1 << 20] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::from_index(5).to_string(), "n5");
        assert_eq!(format!("{:?}", NodeId::from_index(5)), "n5");
    }

    #[test]
    fn domain_id_round_trip() {
        assert_eq!(DomainId::new(7).index(), 7);
        assert_eq!(DomainId::new(7).as_u16(), 7);
        assert_eq!(DomainId::default().index(), 0);
    }

    #[test]
    fn domain_id_display() {
        assert_eq!(DomainId::new(3).to_string(), "clk3");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(DomainId::new(0) < DomainId::new(1));
    }
}
