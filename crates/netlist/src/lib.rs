//! Gate-level netlist substrate for the at-speed logic BIST reproduction.
//!
//! This crate provides the circuit representation every other crate in the
//! workspace builds on: a compact arena-based netlist of logic gates and
//! D flip-flops annotated with clock domains, plus the structural analyses
//! (levelization, fanout maps, statistics) and a text format
//! (ISCAS-`.bench`-style) used by tests and examples.
//!
//! # Model
//!
//! A [`Netlist`] is a directed graph of [`GateKind`] nodes. Combinational
//! gates are n-ary where that makes sense (`AND`, `OR`, `XOR`, ...);
//! sequential elements are single-input D flip-flops ([`GateKind::Dff`])
//! tagged with a [`DomainId`] naming the clock domain that drives them.
//! [`GateKind::XSource`] models a net whose value is unknown during test
//! (uninitialized memory output, analog block, ...) — the DFT crate bounds
//! these before BIST is applied.
//!
//! # Example
//!
//! ```
//! use lbist_netlist::{Netlist, GateKind, DomainId};
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g = nl.add_gate(GateKind::Nand, &[a, b]);
//! let q = nl.add_dff(g, DomainId::new(0));
//! nl.add_output("y", q);
//! assert!(nl.validate().is_ok());
//! assert_eq!(nl.dffs().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench_io;
mod error;
mod fanout;
mod id;
mod kind;
mod level;
mod netlist;
mod stats;

pub use bench_io::{parse_bench, to_bench, BenchParseError};
pub use error::NetlistError;
pub use fanout::Fanouts;
pub use id::{DomainId, NodeId};
pub use kind::GateKind;
pub use level::Levelization;
pub use netlist::Netlist;
pub use stats::NetlistStats;
