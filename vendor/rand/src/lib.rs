//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the small, deterministic subset of the `rand 0.8` API the
//! workspace actually uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::SmallRng`]. The generator is a SplitMix64 stream, which is
//! plenty for synthetic-core generation and randomized tests; it is NOT a
//! drop-in statistical replacement for `rand`'s default generators, and
//! the streams differ from upstream `rand` for the same seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling of a type from raw random bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample. Mirrors rand's `SampleUniform` so
/// the output type is an independent inference variable (letting unsuffixed
/// range literals take their type from the call site, as with real rand).
pub trait SampleUniform: Sized {}

/// A range that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
    /// Builds a generator from OS entropy. This offline stand-in derives
    /// it from the current time instead.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x1234_5678);
        Self::seed_from_u64(nanos)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64 stream).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

/// A convenience thread-local generator, mirroring `rand::thread_rng`.
pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2u64..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn roughly_balanced_bits() {
        let mut rng = SmallRng::seed_from_u64(1);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / 64_000.0;
        assert!((0.48..0.52).contains(&frac), "bit bias: {frac}");
    }
}
