//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of proptest's API the workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config]`, `name in strategy` and
//! `name: Type` parameters), [`Strategy`] with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`Arbitrary`]-typed parameters,
//! `prop_assert!`/`prop_assert_eq!`, and [`prelude`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (reproducible across runs), and failing cases are
//! reported without shrinking.

#![forbid(unsafe_code)]

/// Deterministic case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5EED_5EED_5EED_5EED }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample empty range");
        self.next_u64() % bound
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(rng.below(span.max(1)) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a default generation strategy (used for `name: Type`
/// parameters in [`proptest!`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(65) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// A strategy drawing an [`Arbitrary`] value (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `elem` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __bind_params {
    ($rng:ident,) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&$strat, &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__bind_params!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__bind_params!($rng, $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                #[allow(unused_mut)]
                let mut rng = $crate::TestRng::new(
                    0xD1CE_0000_0000_0000u64 ^ (case.wrapping_mul(0x0000_0001_0000_01B3))
                );
                // One closure per case so a `return` inside the body
                // rejects only the current case (as in real proptest),
                // not the remaining cases.
                #[allow(clippy::redundant_closure_call)]
                (|| {
                    $crate::__bind_params!(rng, $($params)*);
                    $body
                })();
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// The property-test macro. Supports `#![proptest_config(...)]`, multiple
/// `#[test] fn` items, and both `name in strategy` and `name: Type`
/// parameter forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::new(2);
        let s = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(3);
        let s = collection::vec(0u8..4, 1..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_both_param_forms(a in 1usize..5, b: u64, v in collection::vec(0u8..2, 1..4)) {
            prop_assert!((1..5).contains(&a));
            let _ = b;
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn macro_handles_trailing_comma(
            x in 0usize..3,
        ) {
            prop_assert!(x < 3);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }
}
