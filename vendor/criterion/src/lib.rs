//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of criterion's API the workspace's benches use:
//! [`Criterion::benchmark_group`], group configuration
//! (`measurement_time`, `sample_size`, `throughput`), `bench_function`
//! with [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it runs a short warmup,
//! then samples the routine under a wall-clock budget and prints
//! mean/min time per iteration (and throughput where configured).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. All variants behave the same
/// here: setup runs once per measured iteration, unmeasured.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement driver handed to `bench_function` closures.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    /// (mean, min) nanoseconds per iteration of the last run.
    result: Option<(f64, f64)>,
}

impl Bencher {
    fn new(budget: Duration, samples: usize) -> Self {
        Bencher { budget, samples, result: None }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup.
        black_box(routine());
        let started = Instant::now();
        let mut times = Vec::with_capacity(self.samples);
        while times.len() < self.samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed().as_nanos() as f64);
        }
        self.record(&times);
    }

    /// Measures `routine` with per-iteration `setup` excluded from timing.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let started = Instant::now();
        let mut times = Vec::with_capacity(self.samples);
        while times.len() < self.samples && started.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            times.push(t0.elapsed().as_nanos() as f64);
        }
        self.record(&times);
    }

    fn record(&mut self, times: &[f64]) {
        if times.is_empty() {
            self.result = None;
            return;
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        self.result = Some((mean, min));
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Sets the target sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.budget, self.samples);
        f(&mut b);
        match b.result {
            Some((mean, min)) => {
                let mut line =
                    format!("{}/{name}: mean {} min {}", self.name, human_ns(mean), human_ns(min));
                if let Some(t) = self.throughput {
                    let (count, unit) = match t {
                        Throughput::Elements(n) => (n, "elem"),
                        Throughput::Bytes(n) => (n, "B"),
                    };
                    let per_sec = count as f64 / (mean / 1_000_000_000.0);
                    line.push_str(&format!(" ({per_sec:.0} {unit}/s)"));
                }
                println!("{line}");
            }
            None => println!("{}/{name}: no samples collected", self.name),
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted and ignored in this stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            budget: Duration::from_secs(2),
            samples: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(Duration::from_secs(2), 10);
        f(&mut b);
        match b.result {
            Some((mean, min)) => {
                println!("{name}: mean {} min {}", human_ns(mean), human_ns(min));
            }
            None => println!("{name}: no samples collected"),
        }
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records() {
        let mut b = Bencher::new(Duration::from_millis(50), 5);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(b.result.is_some());
    }

    #[test]
    fn bencher_iter_batched_records() {
        let mut b = Bencher::new(Duration::from_millis(50), 5);
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        assert!(b.result.is_some());
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.measurement_time(Duration::from_millis(20)).sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
