//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the subset of rayon's API the workspace uses — [`scope`],
//! [`Scope::spawn`], [`join`] and [`current_num_threads`] — implemented on
//! `std::thread::scope`. Unlike real rayon there is no work-stealing pool:
//! every `spawn` is an OS thread. Callers in this workspace spawn one task
//! per shard with shard count = [`current_num_threads`], for which plain
//! scoped threads are an excellent substitute.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Number of worker threads a parallel region should use: the machine's
/// available parallelism, overridable (like rayon) with the
/// `RAYON_NUM_THREADS` environment variable.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// A scope in which borrowed-data tasks can be spawned; all tasks join
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope. Panics in the
    /// task are propagated when the scope joins.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let handoff = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handoff));
    }
}

/// Creates a scope for spawning borrowed-data tasks; returns once every
/// spawned task has completed.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize; 100];
        scope(|s| {
            for chunk in data.chunks(25) {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_tasks_can_mutate_disjoint_slices() {
        let mut buf = vec![0u64; 64];
        scope(|s| {
            for (i, chunk) in buf.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        });
        assert!(buf.iter().all(|&v| v > 0));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
