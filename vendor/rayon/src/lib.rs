//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the subset of rayon's API the workspace uses — [`scope`],
//! [`Scope::spawn`], [`join`] and [`current_num_threads`] — with the
//! same signatures as the real crate. Since the unified execution
//! layer landed it is a thin facade over `lbist-exec`: spawns run on
//! the **persistent work-stealing pool** (workers spawned once, parked
//! when idle, caller-helping waits) instead of the one-OS-thread-per-
//! spawn scoped threads of the original stub, so nothing outside the
//! workspace changes while every `rayon::scope` caller inherits the
//! pool semantics.

#![forbid(unsafe_code)]

/// Number of worker threads a parallel region uses: the persistent
/// pool's size — the machine's available parallelism, overridable
/// (like rayon) with the `RAYON_NUM_THREADS` environment variable
/// (read when the pool first initialises).
pub fn current_num_threads() -> usize {
    lbist_exec::current_num_threads()
}

/// A scope in which borrowed-data tasks can be spawned; all tasks join
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: lbist_exec::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task onto the pool; it may borrow from outside the
    /// scope. Panics in the task are propagated when the scope joins.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        self.inner.spawn(move |inner| f(&Scope { inner: inner.clone() }));
    }
}

/// Creates a pool-backed scope for spawning borrowed-data tasks;
/// returns once every spawned task has completed.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    lbist_exec::scope(|inner| f(&Scope { inner: inner.clone() }))
}

/// Runs two closures, potentially in parallel on the pool, and returns
/// both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    lbist_exec::join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize; 100];
        scope(|s| {
            for chunk in data.chunks(25) {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_tasks_can_mutate_disjoint_slices() {
        let mut buf = vec![0u64; 64];
        scope(|s| {
            for (i, chunk) in buf.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        });
        assert!(buf.iter().all(|&v| v > 0));
    }

    #[test]
    fn nested_spawns_reach_the_same_pool() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..3 {
                let counter = &counter;
                s.spawn(move |outer| {
                    outer.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
