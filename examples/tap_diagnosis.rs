//! Driving BIST through Boundary-Scan and diagnosing a failing core.
//!
//! The paper's pure-BIST interface is three pins plus a TAP: start
//! self-test over JTAG, poll `Finish`, read `Result`, and on failure
//! download MISR snapshots to localise the first failing pattern window.
//!
//! ```text
//! cargo run --release --example tap_diagnosis
//! ```

use lbist::core::{
    diagnose_first_failing_interval, SelfTestSession, SessionConfig, StumpsConfig, TapBackend,
    TapController, TapInstruction,
};
use lbist::cores::{CoreProfile, CpuCoreGenerator};
use lbist::dft::{prepare_core, PrepConfig, TpiMethod};
use lbist::fault::{Fault, FaultKind};

/// A chip model: BIST engine state the TAP pokes at. The sessions
/// themselves run when `start` is pulsed.
struct Chip<'a> {
    session: SelfTestSession<'a>,
    cfg: SessionConfig,
    finish: bool,
    pass: Option<bool>,
    golden: Option<lbist::core::SessionResult>,
    signature_bits: Vec<bool>,
}

impl<'a> TapBackend for Chip<'a> {
    fn start(&mut self) {
        let result = self.session.run(&self.cfg);
        let pass = self.golden.as_ref().map(|g| result.matches(g));
        self.signature_bits = result
            .signatures
            .iter()
            .flat_map(|sig| (0..sig.len()).map(move |i| sig.get(i)))
            .collect();
        if self.golden.is_none() {
            self.golden = Some(result);
        }
        self.finish = true;
        self.pass = pass.or(Some(true));
    }
    fn status(&self) -> (bool, bool) {
        (self.finish, self.pass.unwrap_or(false))
    }
    fn load_seed(&mut self, _bits: &[bool]) {}
    fn signature_bits(&self) -> Vec<bool> {
        self.signature_bits.clone()
    }
}

fn main() {
    let netlist = CpuCoreGenerator::new(CoreProfile::core_x().scaled(200), 99).generate();
    let core = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 8,
            wrap_ios: true,
            obs_budget: 0,
            tpi: TpiMethod::None,
            seed: 4,
        },
    );
    let session = SelfTestSession::new(&core, &StumpsConfig::default());
    let cfg = SessionConfig { num_patterns: 48, snapshot_every: 8, ..Default::default() };

    println!("=== golden pass over JTAG ===");
    let chip = Chip {
        session,
        cfg: cfg.clone(),
        finish: false,
        pass: None,
        golden: None,
        signature_bits: Vec::new(),
    };
    let mut tap = TapController::new(chip);

    // Start BIST: IR <- LBIST_START, DR <- 1.
    tap.load_instruction(TapInstruction::LbistStart);
    tap.shift_dr(&[true]);
    // Poll status.
    tap.load_instruction(TapInstruction::LbistStatus);
    let status = tap.shift_dr(&[false, false]);
    println!("finish = {}, result = {} (golden recorded)", status[0], status[1]);

    // Download the signature.
    tap.load_instruction(TapInstruction::LbistSignature);
    let n = tap.backend().signature_bits.len();
    let sig = tap.shift_dr(&vec![false; n]);
    let ones = sig.iter().filter(|&&b| b).count();
    println!("downloaded {} signature bits ({} ones)", sig.len(), ones);

    println!("\n=== defective chip ===");
    let site = core.netlist.fanins(core.netlist.dffs()[1])[0];
    let fault = Fault::stem(site, FaultKind::StuckAt1);
    println!("injecting {fault}");
    let golden_snapshot_run = {
        let mut s = SelfTestSession::new(&core, &StumpsConfig::default());
        s.run(&cfg)
    };
    {
        let backend = tap.backend_mut();
        backend.cfg.injected_fault = Some(fault);
        backend.finish = false;
    }
    tap.load_instruction(TapInstruction::LbistStart);
    tap.shift_dr(&[true]);
    tap.load_instruction(TapInstruction::LbistStatus);
    let status = tap.shift_dr(&[false, false]);
    println!("finish = {}, result = {}", status[0], status[1]);

    // Diagnosis: re-run with snapshots and bracket the first failure.
    let faulty_run = {
        let mut s = SelfTestSession::new(&core, &StumpsConfig::default());
        let mut c = cfg.clone();
        c.injected_fault = Some(fault);
        s.run(&c)
    };
    match diagnose_first_failing_interval(&golden_snapshot_run, &faulty_run, 8) {
        Some(report) => println!("diagnosis: {report}"),
        None => println!("diagnosis: no divergence (aliased)"),
    }
}
