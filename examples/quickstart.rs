//! Quickstart: make a core BIST-ready, run self-test, check the result pin.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lbist::core::{SelfTestSession, SessionConfig, StumpsConfig};
use lbist::cores::{CoreProfile, CpuCoreGenerator};
use lbist::dft::{prepare_core, PrepConfig, TpiMethod};
use lbist::fault::{Fault, FaultKind};
use lbist::netlist::NetlistStats;

fn main() {
    // 1. The IP core under test: a synthetic CPU-like block with the
    //    structural profile of the paper's Core X, scaled for a demo.
    let profile = CoreProfile::core_x().scaled(100);
    println!("generating {profile}");
    let netlist = CpuCoreGenerator::new(profile, 2025).generate();
    println!("{}\n", NetlistStats::compute(&netlist));

    // 2. BIST preparation: X-bounding, PI/PO scan cells, balanced
    //    per-domain chains, fault-sim-guided observation points.
    let core = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 12,
            wrap_ios: true,
            obs_budget: 16,
            tpi: TpiMethod::FaultSimGuided { patterns: 512 },
            seed: 1,
        },
    );
    println!(
        "BIST-ready: {} chains (max length {}), {} observation points, overhead {:.2}%",
        core.chains.num_chains(),
        core.chains.max_chain_length(),
        core.observation_cells.len(),
        core.overhead.percent()
    );

    // 3. Build the per-domain PRPG/MISR architecture and run self-test.
    let mut session = SelfTestSession::new(&core, &StumpsConfig::default());
    for db in session.architecture().domains() {
        println!(
            "  domain {}: {} chains, PRPG {} bits, MISR {} bits (compactor: {})",
            db.domain,
            db.chains.len(),
            db.prpg.lfsr().len(),
            db.misr.width(),
            if db.compactor.is_passthrough() { "none" } else { "XOR tree" }
        );
    }
    let cfg = SessionConfig { num_patterns: 64, ..Default::default() };
    let golden = session.run(&cfg);
    println!(
        "\ngolden run: {} patterns, {} shift cycles",
        golden.patterns_applied, golden.shift_cycles
    );

    // 4. A healthy chip passes...
    let retest = session.run(&cfg);
    println!(
        "healthy re-run   -> Result = {}",
        if retest.matches(&golden) { "PASS" } else { "FAIL" }
    );

    // 5. ...and a defective one fails.
    let site = core.netlist.fanins(core.netlist.dffs()[3])[0];
    let mut bad = cfg.clone();
    bad.injected_fault = Some(Fault::stem(site, FaultKind::StuckAt0));
    let faulty = session.run(&bad);
    println!(
        "defective re-run -> Result = {}  (injected {} )",
        if faulty.matches(&golden) { "PASS" } else { "FAIL" },
        Fault::stem(site, FaultKind::StuckAt0)
    );
}
