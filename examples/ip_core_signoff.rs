//! IP-core test sign-off: the paper's full flow on one core.
//!
//! Reproduces the Table 1 *methodology* end to end on a scaled synthetic
//! core: random-phase fault grading (Fault Coverage 1), fault-sim-guided
//! observation points, top-up ATPG (Fault Coverage 2), and the final
//! self-test signature.
//!
//! ```text
//! cargo run --release --example ip_core_signoff
//! ```

use lbist::atpg::TopUpAtpg;
use lbist::core::{SelfTestSession, SessionConfig, StumpsConfig};
use lbist::cores::{CoreProfile, CpuCoreGenerator};
use lbist::dft::{prepare_core, PrepConfig, TpiMethod};
use lbist::fault::{FaultUniverse, StuckAtSim};
use lbist::sim::CompiledCircuit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let profile = CoreProfile::core_x().scaled(50);
    println!("=== sign-off for {profile} ===");
    let netlist = CpuCoreGenerator::new(profile, 7).generate();

    // BIST preparation with the paper's observation-point method.
    let core = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 16,
            wrap_ios: true,
            obs_budget: 24,
            tpi: TpiMethod::FaultSimGuided { patterns: 1024 },
            seed: 3,
        },
    );
    println!(
        "chains: {} (max len {}), obs points: {}, overhead: {:.2}%",
        core.chains.num_chains(),
        core.chains.max_chain_length(),
        core.observation_cells.len(),
        core.overhead.percent()
    );

    // Random phase: grade 2048 PRPG-style patterns.
    let cc = CompiledCircuit::compile(&core.netlist).expect("core compiles");
    let universe = FaultUniverse::stuck_at(&core.netlist);
    println!(
        "fault universe: {} total, {} collapsed",
        universe.num_total(),
        universe.num_collapsed()
    );
    let mut sim =
        StuckAtSim::new(&cc, universe.representatives(), StuckAtSim::observe_all_captures(&cc));
    let mut rng = SmallRng::seed_from_u64(11);
    let mut frame = cc.new_frame();
    for _ in 0..(2048 / 64) {
        for &pi in cc.inputs() {
            frame[pi.index()] = rng.gen();
        }
        frame[core.test_mode().index()] = !0;
        for &ff in cc.dffs() {
            frame[ff.index()] = rng.gen();
        }
        sim.run_batch(&mut frame, 64);
    }
    let fc1 = sim.coverage();
    println!("Fault Coverage 1 (random, {} patterns): {:.2}%", fc1.patterns, fc1.percent());

    // Top-up ATPG for the survivors.
    let survivors = sim.undetected();
    let mut atpg = TopUpAtpg::new(&cc, StuckAtSim::observe_all_captures(&cc));
    atpg.pin(core.test_mode(), true);
    let report = atpg.run(&survivors, 13);
    let testable = fc1.total - report.untestable;
    let fc2 = (fc1.detected + report.faults_detected) as f64 / testable.max(1) as f64 * 100.0;
    println!("top-up: {report}");
    println!("Fault Coverage 2 (with {} top-up patterns): {:.2}%", report.patterns.len(), fc2);

    // Final signature sign-off through the real architecture.
    let mut session = SelfTestSession::new(&core, &StumpsConfig::default());
    let result = session.run(&SessionConfig {
        num_patterns: 128,
        top_up: report.patterns.clone(),
        ..Default::default()
    });
    println!(
        "\nsignatures after {} patterns ({} shift cycles):",
        result.patterns_applied, result.shift_cycles
    );
    for (db, sig) in session.architecture().domains().iter().zip(&result.signatures) {
        println!("  domain {} MISR[{}] = {:?}", db.domain, db.misr.width(), sig);
    }
    println!("\nsign-off complete in {:.2?}", t0.elapsed());
}
