//! Hybrid-BIST reseeding: top-up cubes become LFSR seeds, a seed-
//! scheduled session applies them through the normal scan plumbing, and
//! the storage ledger shows seeds beating stored patterns.
//!
//! ```text
//! cargo run --release --example hybrid_reseed
//! ```

use lbist::atpg::TopUpAtpg;
use lbist::core::{SelfTestSession, SessionConfig, StumpsArchitecture, StumpsConfig};
use lbist::cores::{CoreProfile, CpuCoreGenerator};
use lbist::dft::{prepare_core, PrepConfig, TpiMethod};
use lbist::fault::{FaultUniverse, StuckAtSim};
use lbist::reseed::{CubeFate, DomainChannel, ReseedPlanner, ScanLinearMap};
use lbist::sim::CompiledCircuit;

fn main() {
    // 1. A BIST-ready core. Direct phase-shifter channels (no space
    //    expander) keep the chains linearly independent per shift cycle —
    //    the TPG shape reseeding wants.
    let netlist = CpuCoreGenerator::new(CoreProfile::core_x().scaled(300), 7).generate();
    let core = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 12,
            obs_budget: 0,
            tpi: TpiMethod::None,
            ..PrepConfig::default()
        },
    );
    let stumps = StumpsConfig { use_expander: false, ..StumpsConfig::default() };
    let cc = CompiledCircuit::compile(&core.netlist).unwrap();

    // 2. Random phase: find the random-resistant tail.
    let mut arch = StumpsArchitecture::build(&core, &stumps);
    let universe = FaultUniverse::stuck_at(&core.netlist);
    let mut sim =
        StuckAtSim::new(&cc, universe.representatives(), StuckAtSim::observe_all_captures(&cc));
    let mut frame = cc.new_frame();
    for _ in 0..8 {
        lbist::core::fill_frame_from_prpg(&mut arch, &core, &mut frame);
        sim.run_batch(&mut frame, 64);
    }
    let fc1 = sim.coverage();
    let survivors = sim.undetected();
    println!(
        "FC1 = {:.2}% after 512 random patterns, {} survivors",
        fc1.percent(),
        survivors.len()
    );

    // 3. Top-up ATPG emits partially-specified cubes (care-bit masks).
    let mut atpg = TopUpAtpg::new(&cc, StuckAtSim::observe_all_captures(&cc));
    atpg.pin(core.test_mode(), true);
    let report = atpg.run(&survivors, 11);
    println!("top-up: {} cubes ({})", report.cubes.len(), report);

    // 4. Solve the cubes into PRPG seeds over the architecture's linear
    //    map, packing compatible cubes into shared seeds.
    let shift_cycles = arch.max_chain_length().max(1);
    let channels: Vec<DomainChannel<'_>> = arch
        .domains()
        .iter()
        .map(|db| DomainChannel {
            lfsr: db.prpg.lfsr(),
            shifter: db.prpg.shifter(),
            expander: db.prpg.expander(),
            chains: &db.chains,
        })
        .collect();
    let map = ScanLinearMap::build(&channels, shift_cycles);
    let mut planner = ReseedPlanner::new(&map);
    for &pi in cc.inputs() {
        planner.hold(pi, pi == core.test_mode());
    }
    planner.use_fallback_patterns(&report.patterns);
    let plan = planner.plan(&report.cubes, &cc, 0xFEED);
    let seeded = plan.fates.iter().filter(|f| matches!(f, CubeFate::Seeded { .. })).count();
    println!(
        "plan: {seeded}/{} cubes into {} seeds — {} seed bits + {} stored-pattern bits vs {} \
         baseline bits ({:.1}x compression)",
        plan.storage.cubes,
        plan.storage.seeds,
        plan.storage.seed_bits,
        plan.storage.stored_pattern_bits,
        plan.storage.baseline_bits,
        plan.storage.compression_ratio(),
    );

    // 5. A seed-scheduled self-test session: the random budget split
    //    around the reseed windows, signatures compared golden-vs-retest.
    let schedule = plan.schedule(256, 4);
    let mut session = SelfTestSession::new(&core, &stumps);
    let cfg = SessionConfig {
        reseed: Some(schedule.clone()),
        top_up: plan.stored.clone(),
        ..SessionConfig::default()
    };
    let golden = session.run(&cfg);
    let retest = session.run(&cfg);
    println!(
        "seed-scheduled session: {} loads ({} reseeds, {} stored), result = {}",
        golden.patterns_applied,
        schedule.num_seeds(),
        plan.stored.len(),
        if retest.matches(&golden) { "PASS" } else { "FAIL" },
    );
    assert!(retest.matches(&golden));
}
