//! Multi-clock at-speed testing: Fig. 2 waveforms and transition-fault
//! grading through the double-capture window.
//!
//! ```text
//! cargo run --release --example multi_clock_atspeed
//! ```

use lbist::clock::{CaptureTimingPlan, ClockGatingBlock, DomainTimingPlan, SkewModel};
use lbist::cores::{CoreProfile, CpuCoreGenerator};
use lbist::dft::{prepare_core, PrepConfig, TpiMethod};
use lbist::fault::{CaptureWindow, FaultUniverse, TransitionSim};
use lbist::netlist::DomainId;
use lbist::sim::CompiledCircuit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- Fig. 2: the clock gating block's waveforms -----------------------
    let plan = CaptureTimingPlan::with_domains(
        vec![
            DomainTimingPlan::from_mhz(DomainId::new(0), 250.0),
            DomainTimingPlan::from_mhz(DomainId::new(1), 330.0),
        ],
        4, // shift cycles drawn in the chart
    );
    let waves = ClockGatingBlock::generate(&plan);
    println!("=== capture window waveforms (Fig. 2) ===");
    println!("{}", waves.render(waves.end_ps / 110));
    let skew = SkewModel::uniform(2, plan.d3_ps / 4);
    match plan.verify(&skew) {
        Ok(()) => println!("at-speed properties VERIFIED: two pulses per domain at the"),
        Err(v) => println!("timing violation: {v}"),
    }
    println!("functional period (d2/d4), slow SE, d3 > max skew\n");

    // --- transition faults through the double-capture window --------------
    let profile = CoreProfile::core_y().scaled(400); // 8 domains, small
    println!("=== transition-fault grading on {profile} ===");
    let netlist = CpuCoreGenerator::new(profile, 21).generate();
    let core = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 16,
            wrap_ios: true,
            obs_budget: 0,
            tpi: TpiMethod::None,
            seed: 5,
        },
    );
    let cc = CompiledCircuit::compile(&core.netlist).expect("compiles");
    let universe = FaultUniverse::transition(&core.netlist);
    let stems: Vec<_> = universe.representatives().into_iter().filter(|f| f.is_stem()).collect();
    println!("{} transition fault stems", stems.len());

    let window = CaptureWindow::all_domains(core.netlist.num_domains());
    let mut sim = TransitionSim::new(&cc, stems, window);
    let mut rng = SmallRng::seed_from_u64(77);
    let mut base = cc.new_frame();
    for batch in 0..16 {
        for &pi in cc.inputs() {
            base[pi.index()] = rng.gen();
        }
        base[core.test_mode().index()] = !0;
        for &ff in cc.dffs() {
            base[ff.index()] = rng.gen();
        }
        sim.run_batch(&base, 64);
        if (batch + 1) % 4 == 0 {
            let cov = sim.coverage();
            println!("  after {:>4} patterns: TF coverage {:.2}%", cov.patterns, cov.percent());
        }
    }
    let cov = sim.coverage();
    println!("\ndouble-capture transition coverage: {:.2}% of {} faults", cov.percent(), cov.total);
    println!("(a single-capture scheme detects 0% — no launch/capture pair exists)");
}
