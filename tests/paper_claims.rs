//! The paper's four headline claims, executed as machine-checked
//! properties.

use lbist::clock::{
    CaptureTimingPlan, ClockGatingBlock, DomainTimingPlan, ShiftPathConfig, ShiftPathTiming,
    SkewModel,
};
use lbist::cores::{CoreProfile, CpuCoreGenerator};
use lbist::dft::{prepare_core, PrepConfig, TpiMethod};
use lbist::fault::{CaptureWindow, FaultUniverse, TransitionSim};
use lbist::netlist::DomainId;
use lbist::sim::CompiledCircuit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Claim 1 (§2.2): "real at-speed testing is guaranteed since no test
/// clock frequency manipulation is conducted" — every capture pulse pair
/// sits exactly one functional period apart, for *mixed* frequencies.
#[test]
fn claim_at_speed_without_frequency_manipulation() {
    let plan = CaptureTimingPlan::with_domains(
        vec![
            DomainTimingPlan::from_mhz(DomainId::new(0), 250.0),
            DomainTimingPlan::from_mhz(DomainId::new(1), 330.0),
            DomainTimingPlan::from_mhz(DomainId::new(2), 100.0),
        ],
        8,
    );
    let waves = ClockGatingBlock::generate(&plan);
    plan.verify_waveforms(&waves, &SkewModel::uniform(3, plan.d3_ps / 2))
        .expect("generated waveforms satisfy the at-speed property");
    for (d, train) in plan.domains.iter().zip(&waves.capture_clocks) {
        let rises = train.rise_times();
        let gap = rises[plan.shift_cycles + 1] - rises[plan.shift_cycles];
        assert_eq!(gap, d.functional_period_ps, "domain {} at speed", d.domain);
    }
}

/// Claim 2 (§2.2): "d1 and d5 can be as long as desired, making it
/// possible to use a single and slow scan enable signal".
#[test]
fn claim_slow_scan_enable() {
    for stretch in [1u64, 10, 1000] {
        let mut plan = CaptureTimingPlan::with_domains(
            vec![DomainTimingPlan::from_mhz(DomainId::new(0), 250.0)],
            4,
        );
        plan.d1_ps *= stretch;
        plan.d5_ps *= stretch;
        let waves = ClockGatingBlock::generate(&plan);
        plan.verify_waveforms(&waves, &SkewModel::uniform(1, 0))
            .expect("stretching the dead-times never breaks at-speed");
        let spacing = waves.scan_enable.min_transition_spacing_ps().unwrap();
        assert!(spacing >= plan.d1_ps, "SE spacing {spacing} >= d1 {}", plan.d1_ps);
    }
}

/// Claim 3 (§2.3): with the PRPG/MISR clock phase *ahead*, shift-path
/// failures are hold-only on the PRPG side (retiming FFs fix them) and
/// setup-only on the MISR side (removing the compactor fixes them).
#[test]
fn claim_skew_tolerant_shift_paths() {
    for lead in [200i64, 400, 800] {
        // Hold violation appears with lead, no retiming...
        let mut c = ShiftPathConfig { phase_lead_ps: lead, ..ShiftPathConfig::default() };
        let r = ShiftPathTiming::new(c.clone()).analyze();
        if lead > (c.clk2q_ps + c.wire_ps) as i64 - c.hold_ps as i64 {
            assert!(r.prpg_to_chain_hold_slack_ps < 0, "lead {lead}");
        }
        assert!(r.chain_to_misr_setup_slack_ps >= 0, "setup never fails on this side");
        // ...and retiming heals it.
        c.retiming_ff = true;
        assert!(ShiftPathTiming::new(c.clone()).analyze().is_clean());
        // Compactor logic creates the setup failure; removing it heals.
        c.compactor_levels = ((c.shift_period_ps / c.level_delay_ps) + 4) as u32;
        assert!(ShiftPathTiming::new(c.clone()).analyze().chain_to_misr_setup_slack_ps < 0);
        c.compactor_levels = 0;
        assert!(ShiftPathTiming::new(c).analyze().is_clean());
    }
}

/// Claim 4 (§2.3): "d3 can be easily adjusted to be larger than the
/// maximal clock skew between the two clock domains" — and the verifier
/// rejects plans where it is not.
#[test]
fn claim_d3_clears_inter_domain_skew() {
    let plan = CaptureTimingPlan::with_domains(
        vec![
            DomainTimingPlan::from_mhz(DomainId::new(0), 250.0),
            DomainTimingPlan::from_mhz(DomainId::new(1), 250.0),
        ],
        2,
    );
    assert!(plan.verify(&SkewModel::uniform(2, plan.d3_ps - 1)).is_ok());
    assert!(plan.verify(&SkewModel::uniform(2, plan.d3_ps)).is_err());
    assert!(plan.verify(&SkewModel::uniform(2, plan.d3_ps * 3)).is_err());
}

/// The at-speed payoff: the double-capture window detects transition
/// faults on a multi-domain core; coverage grows with patterns.
#[test]
fn double_capture_detects_transition_faults_across_domains() {
    let netlist = CpuCoreGenerator::new(CoreProfile::core_x().scaled(200), 3).generate();
    let core = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 6,
            obs_budget: 0,
            tpi: TpiMethod::None,
            ..PrepConfig::default()
        },
    );
    let cc = CompiledCircuit::compile(&core.netlist).unwrap();
    let stems: Vec<_> = FaultUniverse::transition(&core.netlist)
        .representatives()
        .into_iter()
        .filter(|f| f.is_stem())
        .collect();
    let total = stems.len();
    let mut sim =
        TransitionSim::new(&cc, stems, CaptureWindow::all_domains(core.netlist.num_domains()));
    let mut rng = SmallRng::seed_from_u64(8);
    let mut base = cc.new_frame();
    let mut checkpoints = Vec::new();
    for b in 0..8 {
        for &pi in cc.inputs() {
            base[pi.index()] = rng.gen();
        }
        base[core.test_mode().index()] = !0;
        for &ff in cc.dffs() {
            base[ff.index()] = rng.gen();
        }
        sim.run_batch(&base, 64);
        if b == 0 || b == 7 {
            checkpoints.push(sim.coverage().detected);
        }
    }
    assert!(checkpoints[0] > 0, "some transition faults detected in the first batch");
    assert!(checkpoints[1] > checkpoints[0], "coverage grows with patterns");
    assert!(
        sim.coverage().detected as f64 / total as f64 > 0.3,
        "double capture reaches a substantive fraction of transition faults: {}",
        sim.coverage()
    );
}
