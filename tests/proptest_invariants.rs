//! Property-based tests over the core data structures and invariants.

use lbist::fault::{CaptureWindow, Fault, FaultKind, FaultUniverse, StuckAtSim, TransitionSim};
use lbist::netlist::{parse_bench, to_bench, DomainId, GateKind, Netlist, NodeId};
use lbist::sim::{CompiledCircuit, Logic};
use lbist::tpg::{Lfsr, LfsrPoly, Misr, PhaseShifter, SpaceCompactor, SpaceExpander};
use proptest::prelude::*;

/// Strategy: a random small combinational netlist (acyclic by
/// construction: gates only read earlier nodes).
fn arb_comb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..6, proptest::collection::vec((0usize..5, 0usize..100, 0usize..100), 1..40)).prop_map(
        |(num_inputs, gate_specs)| {
            let mut nl = Netlist::new("prop");
            let mut pool: Vec<NodeId> =
                (0..num_inputs).map(|i| nl.add_input(&format!("i{i}"))).collect();
            for (kind_sel, a, b) in gate_specs {
                let kind = match kind_sel {
                    0 => GateKind::And,
                    1 => GateKind::Or,
                    2 => GateKind::Xor,
                    3 => GateKind::Nand,
                    _ => GateKind::Not,
                };
                let fa = pool[a % pool.len()];
                let fb = pool[b % pool.len()];
                let g = if kind == GateKind::Not {
                    nl.add_gate(kind, &[fa])
                } else {
                    nl.add_gate(kind, &[fa, fb])
                };
                pool.push(g);
            }
            let out = *pool.last().unwrap();
            nl.add_output("y", out);
            nl
        },
    )
}

/// Strategy: a random small *sequential* netlist — gates interleaved with
/// flip-flops across two clock domains (acyclic by construction).
fn arb_seq_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..5, proptest::collection::vec((0usize..6, 0usize..100, 0usize..100), 4..32)).prop_map(
        |(num_inputs, specs)| {
            let mut nl = Netlist::new("seqprop");
            let mut pool: Vec<NodeId> =
                (0..num_inputs).map(|i| nl.add_input(&format!("i{i}"))).collect();
            for (sel, a, b) in specs {
                let fa = pool[a % pool.len()];
                let fb = pool[b % pool.len()];
                let node = match sel {
                    0 => nl.add_gate(GateKind::And, &[fa, fb]),
                    1 => nl.add_gate(GateKind::Or, &[fa, fb]),
                    2 => nl.add_gate(GateKind::Xor, &[fa, fb]),
                    3 => nl.add_gate(GateKind::Not, &[fa]),
                    4 => nl.add_dff(fa, DomainId::new(0)),
                    _ => nl.add_dff(fa, DomainId::new(1)),
                };
                pool.push(node);
            }
            // Guarantee both domains exist (the capture window pulses both)
            // and something is observed.
            let last = *pool.last().unwrap();
            let ff0 = nl.add_dff(last, DomainId::new(0));
            let ff1 = nl.add_dff(ff0, DomainId::new(1));
            nl.add_output("y", ff1);
            nl
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip: serialise to `.bench`, reparse, identical structure and
    /// identical simulation behaviour on a probe pattern.
    #[test]
    fn bench_round_trip_preserves_function(nl in arb_comb_netlist(), stim: u64) {
        let text = to_bench(&nl);
        let re = parse_bench(&text).unwrap();
        prop_assert_eq!(re.gate_count(), nl.gate_count());
        let run = |n: &Netlist| -> Vec<u64> {
            let cc = CompiledCircuit::compile(n).unwrap();
            let mut frame = cc.new_frame();
            let mut s = stim;
            for &pi in cc.inputs() {
                frame[pi.index()] = s;
                s = s.rotate_left(7) ^ 0x9E37_79B9_7F4A_7C15;
            }
            cc.eval2(&mut frame);
            cc.outputs().iter().map(|&o| frame[o.index()]).collect()
        };
        prop_assert_eq!(run(&nl), run(&re));
    }

    /// 3-valued simulation is a sound abstraction of 2-valued simulation:
    /// wherever it reports a definite value, 2-valued agrees.
    #[test]
    fn ternary_sim_is_conservative(nl in arb_comb_netlist(), stim: u64) {
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let mut frame2 = cc.new_frame();
        let mut frame3 = lbist::sim::Frame3::new(&cc);
        let mut s = stim;
        for &pi in cc.inputs() {
            frame2[pi.index()] = s;
            frame3.set_words(pi, s, 0);
            s = s.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(11);
        }
        cc.eval2(&mut frame2);
        cc.eval3(&mut frame3);
        for id in nl.ids() {
            let x = frame3.xmask_of(id);
            prop_assert_eq!(frame3.value_of(id) & !x, frame2[id.index()] & !x,
                            "definite bits must agree at {}", id);
        }
    }

    /// Every fault the PPSFP engine reports detected is confirmed by
    /// brute-force forced evaluation, and vice versa (single pattern).
    #[test]
    fn ppsfp_matches_forced_evaluation(nl in arb_comb_netlist(), stim: u64) {
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let observed = StuckAtSim::observe_all_captures(&cc);
        // Pick stem faults over all logic nodes.
        let faults: Vec<Fault> = nl.ids()
            .filter(|&n| nl.kind(n).is_logic() || nl.kind(n) == GateKind::Input)
            .flat_map(|n| [Fault::stem(n, FaultKind::StuckAt0), Fault::stem(n, FaultKind::StuckAt1)])
            .collect();
        let mut sim = StuckAtSim::new(&cc, faults.clone(), observed);
        let mut frame = cc.new_frame();
        let mut s = stim;
        let mut stims = Vec::new();
        for &pi in cc.inputs() {
            stims.push((pi, s & 1 == 1));
            frame[pi.index()] = s & 1; // single-lane pattern
            s >>= 1;
        }
        sim.run_batch(&mut frame, 1);
        for (idx, fault) in faults.iter().enumerate() {
            // Forced evaluation reference.
            let forced = if fault.kind.faulty_value() { !0u64 } else { 0 };
            let eval = |faulty: bool| -> Vec<bool> {
                let mut fr = cc.new_frame();
                for &(pi, v) in &stims {
                    fr[pi.index()] = if v { !0 } else { 0 };
                }
                if faulty {
                    fr[fault.node.index()] = forced;
                }
                for &node in cc.schedule() {
                    fr[node.index()] = cc.eval_node2(node, &fr);
                    if faulty && node == fault.node {
                        fr[node.index()] = forced;
                    }
                }
                cc.outputs().iter().map(|&o| fr[o.index()] & 1 == 1).collect()
            };
            let expect = eval(false) != eval(true);
            prop_assert_eq!(sim.detections()[idx] > 0, expect, "fault {}", fault);
        }
    }

    /// Rayon-sharded stuck-at grading reports coverage bit-identical to
    /// serial grading on arbitrary netlists — the determinism contract of
    /// the parallel fault-simulation engine.
    #[test]
    fn parallel_stuck_at_coverage_equals_serial(nl in arb_comb_netlist(), stim: u64) {
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let universe = FaultUniverse::stuck_at(&nl);
        let observed = StuckAtSim::observe_all_captures(&cc);
        let run = |threads: usize| {
            let mut sim = StuckAtSim::new(&cc, universe.representatives(), observed.clone());
            sim.set_threads(threads);
            let mut s = stim | 1;
            for batch in 0..2u64 {
                let mut frame = cc.new_frame();
                for &pi in cc.inputs() {
                    frame[pi.index()] = s ^ batch.wrapping_mul(0xA5A5_A5A5_A5A5_A5A5);
                    s = s.rotate_left(9) ^ 0x0123_4567_89AB_CDEF;
                }
                sim.run_batch(&mut frame, 64);
            }
            (sim.detections().to_vec(), sim.coverage(), sim.active_faults())
        };
        let serial = run(1);
        for threads in [2, 5] {
            let parallel = run(threads);
            prop_assert_eq!(&parallel.0, &serial.0, "detections differ at {} threads", threads);
            prop_assert_eq!(&parallel.1, &serial.1, "coverage differs at {} threads", threads);
            prop_assert_eq!(parallel.2, serial.2, "active counts differ at {} threads", threads);
        }
    }

    /// The same contract for launch-on-capture transition grading on
    /// random sequential netlists with two clock domains.
    #[test]
    fn parallel_transition_coverage_equals_serial(nl in arb_seq_netlist(), stim: u64) {
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let faults: Vec<Fault> = nl
            .ids()
            .filter(|&n| nl.kind(n).is_logic())
            .flat_map(|n| {
                [Fault::stem(n, FaultKind::SlowToRise), Fault::stem(n, FaultKind::SlowToFall)]
            })
            .collect();
        if faults.is_empty() {
            return;
        }
        let window = CaptureWindow::all_domains(2);
        let run = |threads: usize| {
            let mut sim = TransitionSim::new(&cc, faults.clone(), window.clone());
            sim.set_threads(threads);
            let mut s = stim | 1;
            for _ in 0..2 {
                let mut base = cc.new_frame();
                for &pi in cc.inputs() {
                    base[pi.index()] = s;
                    s = s.rotate_left(17) ^ 0xFEDC_BA98_7654_3210;
                }
                for &ff in cc.dffs() {
                    base[ff.index()] = s;
                    s = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
                }
                sim.run_batch(&base, 64);
            }
            (sim.detections().to_vec(), sim.coverage(), sim.active_faults())
        };
        let serial = run(1);
        for threads in [2, 5] {
            let parallel = run(threads);
            prop_assert_eq!(&parallel.0, &serial.0, "detections differ at {} threads", threads);
            prop_assert_eq!(&parallel.1, &serial.1, "coverage differs at {} threads", threads);
            prop_assert_eq!(parallel.2, serial.2, "active counts differ at {} threads", threads);
        }
    }

    /// MISR superposition: sig(a ⊕ b) = sig(a) ⊕ sig(b) for any streams.
    #[test]
    fn misr_superposition(width in 3usize..20, stream_a: Vec<u8>, stream_b: Vec<u8>) {
        let poly = LfsrPoly::nearest_maximal(width);
        let inputs = poly.degree().min(8);
        let len = stream_a.len().min(stream_b.len()).min(64);
        let bits = |bytes: &[u8], t: usize, i: usize| (bytes[t] >> (i % 8)) & 1 == 1;
        let run = |f: &dyn Fn(usize, usize) -> bool| {
            let mut m = Misr::new(poly.clone(), inputs);
            for t in 0..len {
                let v: Vec<bool> = (0..inputs).map(|i| f(t, i)).collect();
                m.clock(&v);
            }
            m.signature().clone()
        };
        let sa = run(&|t, i| bits(&stream_a, t, i));
        let sb = run(&|t, i| bits(&stream_b, t, i));
        let sx = run(&|t, i| bits(&stream_a, t, i) ^ bits(&stream_b, t, i));
        let mut sum = sa.clone();
        sum.xor_assign(&sb);
        prop_assert_eq!(sum, sx);
    }

    /// Phase shifter: channel c equals the raw LFSR stream delayed by
    /// c × separation, for arbitrary degree/channels/separation.
    #[test]
    fn phase_shifter_shift_property(
        deg in 4usize..14,
        channels in 1usize..5,
        sep in 1u64..200,
        steps in 1usize..80,
    ) {
        let poly = LfsrPoly::maximal(deg).unwrap();
        let ps = PhaseShifter::synthesize(&poly, channels, sep);
        let horizon = steps as u64 + channels as u64 * sep + 1;
        let mut reference = Lfsr::with_ones_seed(poly.clone());
        let stream: Vec<bool> = (0..horizon).map(|_| reference.step()).collect();
        let mut lfsr = Lfsr::with_ones_seed(poly);
        for t in 0..steps {
            let outs = ps.outputs(lfsr.state());
            for (c, &bit) in outs.iter().enumerate() {
                prop_assert_eq!(bit, stream[t + c * sep as usize]);
            }
            lfsr.step();
        }
    }

    /// Space expander and compactor are exact inverses of nothing — but
    /// both are linear, and compaction preserves single-error visibility:
    /// flipping exactly one chain bit always flips exactly one compactor
    /// output.
    #[test]
    fn compactor_single_error_visibility(chains in 2usize..24, outputs in 1usize..8, flip in 0usize..24) {
        let outputs = outputs.min(chains);
        let c = SpaceCompactor::balanced(chains, outputs);
        let clean = vec![false; chains];
        let mut dirty = clean.clone();
        dirty[flip % chains] = true;
        let a = c.compact(&clean);
        let b = c.compact(&dirty);
        let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        prop_assert_eq!(diff, 1);
    }

    /// The expander never hands two chains identical streams (distinct
    /// linear combinations), for any legal sizing.
    #[test]
    fn expander_combos_distinct(channels in 2usize..8, extra in 0usize..10) {
        let max = channels + channels * (channels - 1) / 2;
        let chains = (channels + extra).min(max);
        let e = SpaceExpander::new(channels, chains);
        prop_assert!(e.combos_distinct());
    }

    /// Collapsing never loses detection power: grading the collapsed set
    /// and the full set over the same patterns yields the same coverage
    /// *fraction* for equivalence-closed sets... (weaker, well-defined
    /// check: every collapsed class detected implies at least one member
    /// of the class is detected in the full run and vice versa).
    #[test]
    fn collapsed_and_full_grading_agree(nl in arb_comb_netlist(), stim: u64) {
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let universe = FaultUniverse::stuck_at(&nl);
        let observed = StuckAtSim::observe_all_captures(&cc);
        let mut full = StuckAtSim::new(&cc, universe.faults().to_vec(), observed.clone());
        let mut reps = StuckAtSim::new(&cc, universe.representatives(), observed);
        let mut frame = cc.new_frame();
        let mut s = stim | 1;
        for &pi in cc.inputs() {
            frame[pi.index()] = s;
            s = s.rotate_left(13) ^ 0xABCD_EF01_2345_6789;
        }
        let mut frame2 = frame.clone();
        full.set_drop_after(u32::MAX);
        reps.set_drop_after(u32::MAX);
        full.run_batch(&mut frame, 64);
        reps.run_batch(&mut frame2, 64);
        // Class-level agreement.
        let mut class_detected_full = vec![false; universe.num_collapsed()];
        for (i, &d) in full.detections().iter().enumerate() {
            if d > 0 {
                class_detected_full[universe.class_of(i) as usize] = true;
            }
        }
        for (ci, &d) in reps.detections().iter().enumerate() {
            prop_assert_eq!(
                d > 0,
                class_detected_full[ci],
                "class {} rep detection disagrees with members", ci
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ternary scalar algebra is associative/commutative where it should
    /// be — the 5-valued PODEM algebra builds on this.
    #[test]
    fn ternary_algebra_laws(a in 0u8..3, b in 0u8..3, c in 0u8..3) {
        let lift = |x: u8| match x { 0 => Logic::Zero, 1 => Logic::One, _ => Logic::X };
        let (a, b, c) = (lift(a), lift(b), lift(c));
        prop_assert_eq!(a & b, b & a);
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!(a ^ b, b ^ a);
        prop_assert_eq!((a & b) & c, a & (b & c));
        prop_assert_eq!((a | b) | c, a | (b | c));
        prop_assert_eq!(!(a & b), !a | !b); // De Morgan holds in Kleene logic
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hybrid-BIST reseeding through the facade: a seed the GF(2) solver
    /// produces for a random cube, expanded by the real PRPG → phase
    /// shifter → expander → shift pipeline, reproduces every care bit;
    /// stored fallbacks keep the care bits in the pattern instead.
    #[test]
    fn reseed_solver_round_trips_through_real_pipeline(
        ffs in 6usize..30,
        n_chains in 1usize..5,
        separation in 1u64..64,
        care in proptest::collection::vec((0usize..1000, proptest::prelude::any::<bool>()), 1..14),
    ) {
        use lbist::dft::ScanChains;
        use lbist::reseed::{CubeFate, DomainChannel, ReseedPlanner, ScanLinearMap};
        use lbist::tpg::{LfsrPoly, Prpg, SpaceExpander};

        let mut nl = Netlist::new("reseed-prop");
        let a = nl.add_input("a");
        let mut prev = a;
        let mut cells = Vec::new();
        for _ in 0..ffs {
            prev = nl.add_dff(prev, DomainId::new(0));
            cells.push(prev);
        }
        nl.add_output("y", prev);
        let chains = ScanChains::stitch(&nl, n_chains.min(ffs));
        let n_chains = chains.chains().len();
        let poly = LfsrPoly::maximal(13).unwrap();
        let mut channels = 1usize;
        while channels + channels * (channels - 1) / 2 < n_chains {
            channels += 1;
        }
        let shifter = PhaseShifter::synthesize(&poly, channels, separation);
        let expander = SpaceExpander::new(channels, n_chains);
        let shift_cycles = chains.max_chain_length();
        let lfsr = Lfsr::with_ones_seed(poly.clone());
        let map = ScanLinearMap::build(
            &[DomainChannel {
                lfsr: &lfsr,
                shifter: &shifter,
                expander: Some(&expander),
                chains: chains.chains(),
            }],
            shift_cycles,
        );

        let mut cube = lbist::atpg::TestCube::new();
        for &(sel, value) in &care {
            cube.assign(cells[sel % cells.len()], value);
        }
        let cc = CompiledCircuit::compile(&nl).unwrap();
        let plan = ReseedPlanner::new(&map).plan(std::slice::from_ref(&cube), &cc, 0xCAFE);

        match &plan.fates[0] {
            CubeFate::Seeded { group } => {
                let seed = plan.seeds[*group][0].clone().unwrap();
                // Real pipeline: scalar PRPG stepping, bits shifted into
                // chain cells exactly as the session loads them.
                let mut prpg = Prpg::with_expander(
                    Lfsr::new(poly.clone(), seed),
                    shifter.clone(),
                    expander.clone(),
                );
                let mut state = std::collections::HashMap::new();
                for t in 0..shift_cycles {
                    let bits = prpg.step_vector();
                    for (c, chain) in chains.chains().iter().enumerate() {
                        if let Some(&cell) = chain.cells.get(shift_cycles - 1 - t) {
                            state.insert(cell, bits[c]);
                        }
                    }
                }
                for &(cell, want) in cube.assignments() {
                    prop_assert_eq!(state[&cell], want, "care bit on {}", cell);
                }
            }
            CubeFate::Stored { index } => {
                let pattern = &plan.stored[*index];
                for &(cell, want) in cube.assignments() {
                    let pos = cc.dffs().iter().position(|&n| n == cell).unwrap();
                    prop_assert_eq!(pattern.ff_values[pos], want);
                }
            }
            CubeFate::Infeasible => prop_assert!(false, "scan-only cube cannot be infeasible"),
        }
    }
}
