//! End-to-end integration: the paper's whole flow on a synthetic core.

use lbist::atpg::TopUpAtpg;
use lbist::core::{SelfTestSession, SessionConfig, StumpsConfig};
use lbist::cores::{CoreProfile, CpuCoreGenerator};
use lbist::dft::{prepare_core, PrepConfig, TpiMethod, XBounding};
use lbist::fault::{Fault, FaultKind, FaultUniverse, StuckAtSim};
use lbist::sim::CompiledCircuit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_phase(
    cc: &CompiledCircuit,
    core: &lbist::dft::BistReadyCore,
    sim: &mut StuckAtSim,
    patterns: usize,
    seed: u64,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut frame = cc.new_frame();
    for _ in 0..patterns.div_ceil(64) {
        for &pi in cc.inputs() {
            frame[pi.index()] = rng.gen();
        }
        frame[core.test_mode().index()] = !0;
        for &ff in cc.dffs() {
            frame[ff.index()] = rng.gen();
        }
        sim.run_batch(&mut frame, 64);
    }
}

#[test]
fn full_flow_fc1_tpi_fc2() {
    // Generator seed chosen so the synthetic core's random-resistant tail
    // is within the top-up budget under the vendored PRNG stream (the
    // offline `rand` stand-in produces different streams than upstream
    // rand for the same seed, and with it seed 42 yields a pathologically
    // abort-heavy core).
    let netlist = CpuCoreGenerator::new(CoreProfile::core_x().scaled(100), 1).generate();

    // --- FC1 without test points.
    let bare = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 8,
            obs_budget: 0,
            tpi: TpiMethod::None,
            ..PrepConfig::default()
        },
    );
    let cc0 = CompiledCircuit::compile(&bare.netlist).unwrap();
    let u0 = FaultUniverse::stuck_at(&bare.netlist);
    let mut sim0 =
        StuckAtSim::new(&cc0, u0.representatives(), StuckAtSim::observe_all_captures(&cc0));
    random_phase(&cc0, &bare, &mut sim0, 1024, 1);
    let fc_no_tp = sim0.coverage().fault_coverage();

    // --- FC1 with fault-sim-guided observation points.
    let instrumented = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 8,
            obs_budget: 32,
            tpi: TpiMethod::FaultSimGuided { patterns: 1024 },
            ..PrepConfig::default()
        },
    );
    let cc = CompiledCircuit::compile(&instrumented.netlist).unwrap();
    let u = FaultUniverse::stuck_at(&instrumented.netlist);
    let mut sim = StuckAtSim::new(&cc, u.representatives(), StuckAtSim::observe_all_captures(&cc));
    random_phase(&cc, &instrumented, &mut sim, 1024, 1);
    let fc1 = sim.coverage();

    assert!(
        fc1.fault_coverage() >= fc_no_tp,
        "observation points must not lower coverage: {fc_no_tp:.4} -> {:.4}",
        fc1.fault_coverage()
    );

    // --- top-up ATPG closes most of the gap (FC2 > FC1).
    let survivors = sim.undetected();
    let mut atpg = TopUpAtpg::new(&cc, StuckAtSim::observe_all_captures(&cc));
    atpg.pin(instrumented.test_mode(), true);
    let report = atpg.run(&survivors, 9);
    assert!(report.patterns.len() < survivors.len() || survivors.is_empty());
    let testable = fc1.total - report.untestable;
    let fc2 = (fc1.detected + report.faults_detected) as f64 / testable.max(1) as f64;
    assert!(
        fc2 > fc1.fault_coverage(),
        "top-up must raise coverage: {:.4} -> {fc2:.4}",
        fc1.fault_coverage()
    );
    // The paper's shape: FC2 comfortably above 95% on testable faults.
    assert!(fc2 > 0.95, "FC2 = {fc2:.4}");
}

#[test]
fn bist_ready_core_is_x_clean_and_signature_stable() {
    let netlist = CpuCoreGenerator::new(CoreProfile::core_y().scaled(800), 5).generate();
    assert!(!netlist.xsources().is_empty(), "profile embeds X sources");
    let core = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 8,
            obs_budget: 4,
            tpi: TpiMethod::Cop,
            ..PrepConfig::default()
        },
    );
    assert!(XBounding::verify(&core.netlist, core.test_mode()));

    let mut session = SelfTestSession::new(&core, &StumpsConfig::default());
    let cfg = SessionConfig { num_patterns: 12, ..Default::default() };
    let golden = session.run(&cfg);
    for _ in 0..3 {
        assert!(session.run(&cfg).matches(&golden), "signature must be stable across reruns");
    }
}

#[test]
fn injected_defects_are_caught_by_signature() {
    let netlist = CpuCoreGenerator::new(CoreProfile::core_x().scaled(200), 31).generate();
    let core = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 8,
            obs_budget: 0,
            tpi: TpiMethod::None,
            ..PrepConfig::default()
        },
    );
    let mut session = SelfTestSession::new(&core, &StumpsConfig::default());
    let cfg = SessionConfig { num_patterns: 32, ..Default::default() };
    let golden = session.run(&cfg);

    let mut caught = 0;
    let mut tried = 0;
    for i in 0..6 {
        let ff = core.netlist.dffs()[i * 3 % core.netlist.dffs().len()];
        let site = core.netlist.fanins(ff)[0];
        for kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
            let mut bad = cfg.clone();
            bad.injected_fault = Some(Fault::stem(site, kind));
            if !session.run(&bad).matches(&golden) {
                caught += 1;
            }
            tried += 1;
        }
    }
    // At least one polarity of each stuck-at on a captured net must be
    // excited by 32 random patterns; in practice nearly all are.
    assert!(caught >= tried / 2, "only {caught}/{tried} defects caught");
}

#[test]
fn per_domain_architecture_matches_table1_shape() {
    // Core Y-like: 8 domains -> 8 PRPGs, 8 MISRs (Table 1's "# of PRPGs"
    // and "# of MISRs" rows scale with the domain count).
    let netlist = CpuCoreGenerator::new(CoreProfile::core_y().scaled(800), 77).generate();
    let core = prepare_core(
        &netlist,
        &PrepConfig {
            total_chains: 16,
            obs_budget: 0,
            tpi: TpiMethod::None,
            ..PrepConfig::default()
        },
    );
    let session = SelfTestSession::new(&core, &StumpsConfig::default());
    let arch = session.architecture();
    assert_eq!(arch.domains().len(), 8);
    assert_eq!(arch.misr_widths().len(), 8);
    for db in arch.domains() {
        assert_eq!(db.prpg.lfsr().len(), 19, "the paper's PRPG length");
        assert!(db.misr.width() >= 19);
    }
}
