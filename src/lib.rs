//! **lbist** — at-speed logic BIST for IP cores, in Rust.
//!
//! A full reproduction of *"At-Speed Logic BIST for IP Cores"* (Cheon,
//! Lee, Wang, Wen, Hsu, Cho, Park, Chao, Wu — DATE 2005, DOI
//! 10.1109/DATE.2005.70): the STUMPS-class BIST architecture with one
//! PRPG–MISR pair per clock domain, fault-simulation-guided observation
//! points, double-capture at-speed clocking with a single slow
//! scan-enable, and the skew-tolerant shift-path discipline of the
//! paper's Fig. 3 — plus every substrate it needs (netlist, simulation,
//! fault models, DFT transformations, ATPG, clocking, synthetic cores).
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here as a module.
//!
//! | module | contents |
//! |---|---|
//! | [`exec`] | persistent work-stealing pool + lane-width-generic frame words |
//! | [`netlist`] | gate-level circuits, levelization, `.bench` I/O |
//! | [`sim`] | 64-way bit-parallel 2-/3-valued and sequential simulation |
//! | [`tpg`] | LFSR/PRPG, phase shifters, space expanders, MISRs, compactors |
//! | [`fault`] | stuck-at & transition faults, collapsing, PPSFP, LOC grading |
//! | [`dft`] | X-bounding, IO wrappers, scan stitching, test point insertion |
//! | [`atpg`] | PODEM (emitting test cubes) and the top-up pattern flow |
//! | [`reseed`] | hybrid-BIST reseeding: GF(2) seed solving, cube packing, seed schedules |
//! | [`clock`] | clock gating block, Fig. 2 waveforms, Fig. 3 skew analysis |
//! | [`core`] | the BIST architecture, controller, sessions (seed-scheduled too), TAP |
//! | [`cores`] | synthetic CPU-like IP cores matching Table 1's profiles |
//! | [`ckpt`] | versioned, checksummed checkpoint serialization + atomic file I/O |
//! | [`serve`] | multi-tenant job control plane: admission, fair scheduling, preemption |
//! | [`obs`] | engine-wide metrics: sharded registry, phase spans, JSON/Prometheus export |
//!
//! # Quickstart
//!
//! ```
//! use lbist::cores::{CoreProfile, CpuCoreGenerator};
//! use lbist::dft::{prepare_core, PrepConfig, TpiMethod};
//! use lbist::core::{SelfTestSession, SessionConfig, StumpsConfig};
//!
//! // 1. An IP core (here: a small synthetic CPU-like block).
//! let netlist = CpuCoreGenerator::new(CoreProfile::core_x().scaled(800), 7).generate();
//!
//! // 2. Make it BIST-ready: X-bounding, IO scan cells, chains, test points.
//! let core = prepare_core(&netlist, &PrepConfig {
//!     total_chains: 4,
//!     obs_budget: 2,
//!     tpi: TpiMethod::FaultSimGuided { patterns: 128 },
//!     ..PrepConfig::default()
//! });
//!
//! // 3. Self-test: golden signature, then verify a re-run matches.
//! let mut session = SelfTestSession::new(&core, &StumpsConfig::default());
//! let golden = session.run(&SessionConfig { num_patterns: 16, ..Default::default() });
//! let retest = session.run(&SessionConfig { num_patterns: 16, ..Default::default() });
//! assert!(retest.matches(&golden)); // Result = pass
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lbist_atpg as atpg;
pub use lbist_ckpt as ckpt;
pub use lbist_clock as clock;
pub use lbist_core as core;
pub use lbist_cores as cores;
pub use lbist_dft as dft;
pub use lbist_exec as exec;
pub use lbist_fault as fault;
pub use lbist_netlist as netlist;
pub use lbist_obs as obs;
pub use lbist_reseed as reseed;
pub use lbist_serve as serve;
pub use lbist_sim as sim;
pub use lbist_tpg as tpg;
